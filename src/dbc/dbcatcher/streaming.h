// Online streaming front-end (Fig. 6): the data processing module maintains
// one queue per (database, KPI); the streaming detection module consumes
// base windows, expanding them on "observable" states, and emits verdicts as
// soon as enough data has arrived.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "dbc/cloudsim/unit_data.h"
#include "dbc/common/status.h"
#include "dbc/dbcatcher/correlation_matrix.h"
#include "dbc/dbcatcher/ingest.h"
#include "dbc/dbcatcher/observer.h"
#include "dbc/obs/metrics.h"
#include "dbc/storage/column_store.h"

namespace dbc {

/// One emitted streaming verdict.
struct StreamVerdict {
  size_t db = 0;
  WindowVerdict window;
  DbState state = DbState::kHealthy;
};

/// Observability hooks for the streaming front-end (null = off). Counters
/// never feed back into windowing decisions — observability on/off leaves
/// the verdict stream bit-identical.
struct StreamMetrics {
  Counter* ticks_pushed = nullptr;       // Push/PushAligned successes
  Counter* windows_evaluated = nullptr;  // verdicts resolved by Poll()
  Counter* nodata_verdicts = nullptr;    // verdicts resolved to kNoData
  Counter* buffer_trims = nullptr;       // MaybeTrim erasure batches
  Counter* ticks_trimmed = nullptr;      // buffered ticks dropped by trims
  Counter* cache_evictions = nullptr;    // KCD memo entries evicted on trim
  Gauge* trim_offset = nullptr;          // absolute tick of buffer index 0
  Gauge* buffer_ticks = nullptr;         // retained buffer length (ticks)
  // Kernel-level counters, forwarded to each Poll()'s CorrelationAnalyzer.
  Counter* kcd_fast_pairs = nullptr;       // pair scores via the fast kernel
  Counter* kcd_reference_pairs = nullptr;  // pair scores via the reference
  Counter* kcd_masked_pairs = nullptr;     // degraded pairs (masked kernel)
  Counter* kcd_cache_hits = nullptr;       // KcdCache lookups that hit
  Counter* kcd_stats_built = nullptr;      // per-series prefix tables built
  Counter* kcd_stats_reused = nullptr;     // tables served from the memo
};

/// Incremental DBCatcher over a live KPI feed of one unit.
///
/// Push() one tick of all databases' KPI vectors at a time (or PushAligned()
/// quality-flagged ticks from a TelemetryIngestor); Poll() drains verdicts
/// whose windows have resolved. A base window whose state is "observable"
/// waits for more data (the flexible expansion) before resolving, so Poll()
/// may trail Push() by up to W_M ticks.
///
/// The retained trace is bounded: the hot columns of the backing
/// ColumnStore cover ticks older than the maximum window W_M (plus a
/// diagnosis-context margin) behind the earliest unresolved window; older
/// ticks are sealed into the store's compressed cold tier (or discarded,
/// with config.cold_retention_ticks == 0). All coordinates — verdicts,
/// analyzer windows, cache keys — are absolute ticks.
class DbcatcherStream {
 public:
  DbcatcherStream(const DbcatcherConfig& config, std::vector<DbRole> roles);

  /// Appends one clean collection tick: values[db][kpi]. Fails with
  /// kInvalidArgument on a wrong database count or non-finite values (a
  /// degraded feed must come through PushAligned instead).
  Status Push(const std::vector<std::array<double, kNumKpis>>& values);

  /// Appends one ingestor-aligned tick. Values are always finite (imputed);
  /// per-database quality and quarantine flags feed the validity mask that
  /// excludes degraded databases from peer sets. Ticks must arrive in order.
  Status PushAligned(const AlignedTick& tick);

  /// Returns verdicts finalized since the last Poll. Databases whose window
  /// lacks usable telemetry (quarantined / past the staleness budget)
  /// resolve to DbState::kNoData rather than a spurious healthy/abnormal.
  /// Any window overlapping a warm-up/quarantine-gated tick is overridden to
  /// kNoData — a joining replica is never judged abnormal on cold history.
  std::vector<StreamVerdict> Poll();

  /// Registers a database joining mid-stream (scale-out / replacement).
  /// History before the join is backfilled as invalid + gated; detection for
  /// it starts at the current tick. Returns the new id.
  size_t AddDb(DbRole role);

  /// Marks a database as departed: its in-flight window may still resolve
  /// (to kNoData), after which no further windows are scheduled for it and
  /// it stops holding back the buffer trim. Idempotent.
  Status RemoveDb(size_t db);

  /// Moves the primary role to `db` (every other member becomes a replica);
  /// pair eligibility of the R-R KPIs follows immediately.
  Status SetPrimary(size_t db);

  /// True once `db` has been removed. Unknown ids have never been members,
  /// so they report not-departed instead of indexing out of range.
  bool Departed(size_t db) const {
    return db < departed_.size() && departed_[db] != 0;
  }

  /// Members not departed.
  size_t live_dbs() const;

  /// The config with min_peers floored against the live member count — the
  /// settings verdicts are actually produced under.
  DbcatcherConfig EffectiveConfig() const;

  /// Ticks received so far.
  size_t ticks() const { return ticks_; }

  /// Updates thresholds on the fly (the online feedback module calls this
  /// after adaptive learning).
  void SetGenome(const ThresholdGenome& genome) { config_.genome = genome; }

  const DbcatcherConfig& config() const { return config_; }

  /// The columnar telemetry store backing the stream: hot columns over
  /// [store().base_tick(), store().end_tick()), sealed cold segments behind
  /// them. Analyzers and replays read it with absolute tick coordinates.
  const ColumnStore& store() const { return store_; }

  /// Current member roles (index = database id).
  const std::vector<DbRole>& roles() const { return roles_; }

  /// Absolute tick of the first hot column entry (monotonically
  /// non-decreasing; advances on trims).
  size_t buffer_offset() const { return store_.base_tick(); }

  /// Installs observability counters (copied; null members stay no-ops).
  void set_metrics(const StreamMetrics& metrics) { metrics_ = metrics; }

  /// Installs the store's dbc_store_* gauges/counters.
  void set_store_metrics(const StoreMetrics& metrics) {
    store_.set_metrics(metrics);
  }

  /// Serializes verdict cursors, membership, the adaptive genome, and the
  /// backing store for a durable checkpoint. The KCD memo cache is *not*
  /// persisted: it is a value-transparent memo (differentially tested
  /// against recomputation), so dropping it on recovery changes nothing.
  void SaveState(BinWriter& out) const;

  /// Restores a SaveState() image. The construction-time config (windows,
  /// min_peers, retention) must match the original run; the genome is
  /// restored from the image because feedback mutates it online.
  Status LoadState(BinReader& in);

 private:
  void AppendTick(const std::vector<std::array<double, kNumKpis>>& values,
                  const std::vector<uint8_t>& valid,
                  const std::vector<uint8_t>& gated);
  /// Seals hot ticks no verdict or diagnosis can reference any more into the
  /// store's cold tier (or discards them, with cold retention off).
  void MaybeTrim();

  /// next_t0_ value of a database that schedules no further windows.
  static constexpr size_t kDone = static_cast<size_t>(-1);

  DbcatcherConfig config_;
  std::vector<DbRole> roles_;
  size_t ticks_ = 0;
  /// Next base-window start per database (absolute ticks; kDone = retired).
  std::vector<size_t> next_t0_;
  /// Columnar telemetry: per-(db, KPI) hot columns + validity/gate bitmaps
  /// + compressed cold segments.
  ColumnStore store_;
  /// Departure flags and the tick each departure took effect.
  std::vector<uint8_t> departed_;
  std::vector<size_t> depart_tick_;
  KcdCache cache_;
  StreamMetrics metrics_;
};

}  // namespace dbc
