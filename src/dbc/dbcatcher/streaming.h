// Online streaming front-end (Fig. 6): the data processing module maintains
// one queue per (database, KPI); the streaming detection module consumes
// base windows, expanding them on "observable" states, and emits verdicts as
// soon as enough data has arrived.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "dbc/cloudsim/unit_data.h"
#include "dbc/dbcatcher/correlation_matrix.h"
#include "dbc/dbcatcher/observer.h"

namespace dbc {

/// One emitted streaming verdict.
struct StreamVerdict {
  size_t db = 0;
  WindowVerdict window;
  DbState state = DbState::kHealthy;
};

/// Incremental DBCatcher over a live KPI feed of one unit.
///
/// Push() one tick of all databases' KPI vectors at a time; Poll() drains
/// verdicts whose windows have resolved. A base window whose state is
/// "observable" waits for more data (the flexible expansion) before
/// resolving, so Poll() may trail Push() by up to W_M ticks.
class DbcatcherStream {
 public:
  DbcatcherStream(const DbcatcherConfig& config, std::vector<DbRole> roles);

  /// Appends one collection tick: values[db][kpi].
  void Push(const std::vector<std::array<double, kNumKpis>>& values);

  /// Returns verdicts finalized since the last Poll.
  std::vector<StreamVerdict> Poll();

  /// Ticks received so far.
  size_t ticks() const { return ticks_; }

  /// Updates thresholds on the fly (the online feedback module calls this
  /// after adaptive learning).
  void SetGenome(const ThresholdGenome& genome) { config_.genome = genome; }

  const DbcatcherConfig& config() const { return config_; }

  /// The buffered trace (roles + KPI series received so far). Labels are
  /// empty; callers replaying judgments attach their own ground truth.
  const UnitData& buffer() const { return buffer_; }

 private:
  /// Materializes the buffered stream as a UnitData view for the analyzer.
  void SyncBuffer();

  DbcatcherConfig config_;
  std::vector<DbRole> roles_;
  size_t ticks_ = 0;
  /// Next base-window start per database.
  std::vector<size_t> next_t0_;
  /// Buffered trace (grows with the stream; a production deployment would
  /// trim everything older than W_M).
  UnitData buffer_;
  KcdCache cache_;
};

}  // namespace dbc
