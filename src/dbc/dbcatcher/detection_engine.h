// Sharded detection engine: owns one UnitPipeline per registered unit and
// fans Drain() out across a ThreadPool. Units are share-nothing, so the hot
// path takes no locks — one task per unit per drain, each writing its own
// result slot — and the per-unit alert batches are merged deterministically
// in unit-name order, making parallel output bit-identical to sequential.
// Drained batches are published to every attached AlertSink.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dbc/common/status.h"
#include "dbc/common/thread_pool.h"
#include "dbc/dbcatcher/alert_sink.h"
#include "dbc/dbcatcher/unit_pipeline.h"
#include "dbc/obs/metrics.h"
#include "dbc/obs/trace.h"

namespace dbc {

/// Engine configuration: the per-unit policy plus the sharding degree.
struct DetectionEngineConfig {
  UnitPipelineConfig pipeline;
  /// Worker threads for the parallel drain. 1 = run pipelines sequentially
  /// on the caller's thread (exactly the pre-engine behaviour); 0 = hardware
  /// concurrency.
  size_t workers = 1;
  /// Self-observability. Off (default): no registry exists and the alert
  /// stream is bit-identical to an uninstrumented build. On: the engine owns
  /// a MetricsRegistry (+ TraceLog) wired through every registered pipeline.
  ObsConfig obs;
};

/// Engine-level drain metrics (null = off); per-unit metrics live on the
/// pipelines themselves.
struct EngineMetrics {
  Counter* drains = nullptr;            // Drain() batches completed
  Counter* alerts_published = nullptr;  // merged alerts handed to sinks
  Histogram* drain_seconds = nullptr;   // whole-drain wall time
  Histogram* merge_seconds = nullptr;   // deterministic-merge wall time
  Histogram* unit_drain_seconds = nullptr;  // one observation per unit task
  Gauge* queue_depth = nullptr;   // units still pending in the current drain
  Gauge* utilization = nullptr;   // busy-time / (lanes × fan-out wall time)
  Gauge* sink_dropped = nullptr;  // sum of sinks' back-pressure drops
  /// Cumulative busy seconds per pool lane ("worker" label = lane index).
  std::vector<Gauge*> worker_busy;
};

/// Multi-unit detection engine. All methods must be called from one thread
/// (the engine parallelizes internally); pipelines never share state, so no
/// cross-unit synchronisation exists anywhere on the detection path.
class DetectionEngine {
 public:
  /// Throws std::invalid_argument when the (normalized) detector or ingest
  /// config fails validation — a degenerate deployment fails fast instead of
  /// silently detecting nothing.
  explicit DetectionEngine(DetectionEngineConfig config = {});

  /// Registers a unit with the given database roles. Replaces any unit with
  /// the same name.
  void RegisterUnit(const std::string& unit, std::vector<DbRole> roles);

  /// The unit's pipeline, or nullptr when unregistered. The pointer stays
  /// valid until the unit is re-registered or the engine dies.
  UnitPipeline* Find(const std::string& unit);
  const UnitPipeline* Find(const std::string& unit) const;

  /// Feeds one complete tick of KPI vectors (values[db][kpi]) for `unit`.
  Status Ingest(const std::string& unit,
                const std::vector<std::array<double, kNumKpis>>& values);

  /// Feeds one (possibly degraded) collector sample for `unit`.
  Status IngestSample(const std::string& unit, const TelemetrySample& sample);

  /// Seals every pending ingestion frame for `unit`.
  Status FlushTelemetry(const std::string& unit);

  /// Applies a control-plane membership change to `unit` (join, leave,
  /// switchover, feed rename); see UnitPipeline::ApplyTopology.
  Status ApplyTopology(const std::string& unit, const TopologyUpdate& update);

  /// Resolves pending windows across all units — in parallel when workers
  /// > 1 — and returns the merged alerts in deterministic (unit, tick)
  /// order. The batch is also published to every attached sink. A pipeline
  /// exception (impossible telemetry state, bug) propagates to the caller
  /// after all in-flight unit tasks finish.
  std::vector<Alert> Drain();

  /// Attaches a sink; every subsequent Drain() batch is published to it.
  void AddSink(std::shared_ptr<AlertSink> sink);

  size_t unit_count() const { return pipelines_.size(); }

  /// Registered unit names in the deterministic merge order (name order).
  /// The checkpoint writer iterates this to serialize per-unit state.
  std::vector<std::string> UnitNames() const;

  /// Drain batches completed so far (persisted across restart so the trace
  /// tick and drain counters keep advancing monotonically).
  size_t drain_count() const { return drain_count_; }
  void set_drain_count(size_t count) { drain_count_ = count; }

  /// Effective parallelism (the pool's thread count, or 1 when sequential).
  size_t workers() const { return pool_ ? pool_->thread_count() : 1; }

  const DetectionEngineConfig& config() const { return config_; }

  /// The engine's metric registry, or nullptr when config().obs.enabled is
  /// false. Scrape with PrometheusText() / MetricsSnapshotJson() (see
  /// obs/exposition.h); valid for the engine's lifetime.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The structured per-stage trace ring, or nullptr when tracing is off.
  TraceLog* trace_log() { return trace_.get(); }
  const TraceLog* trace_log() const { return trace_.get(); }

 private:
  DetectionEngineConfig config_;
  /// Name-ordered, which fixes the merge order of Drain().
  std::map<std::string, std::unique_ptr<UnitPipeline>> pipelines_;
  /// Created only when config_.workers != 1.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::shared_ptr<AlertSink>> sinks_;
  /// Created only when config_.obs.enabled; outlives every pipeline.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceLog> trace_;
  EngineMetrics engine_metrics_;
  /// Drain batches completed (doubles as the trace tick for engine events).
  size_t drain_count_ = 0;
};

}  // namespace dbc
