// Sharded detection engine: owns one UnitPipeline per registered unit and
// fans Drain() out across the work-stealing ThreadPool. Units are
// share-nothing, so the hot path takes no cross-unit locks.
//
// Two scheduling modes (DESIGN.md §15):
//
//  - Barrier fan-out (scheduler.enabled = false, the pre-epoch behaviour):
//    one task per unit per drain via ParallelFor; Drain() returns when every
//    unit finished, merged deterministically in unit-name order.
//
//  - Epoch pipelining (scheduler.enabled = true, workers != 1): every
//    Drain() call enqueues one (unit, epoch) task per pipeline onto the
//    work-stealing deques and waits only for the epoch `max_epoch_lead`
//    behind it, so a slow unit no longer barriers its drain-mates — fast
//    units run up to `max_epoch_lead` epochs ahead. A reorder buffer at the
//    merge emits epochs strictly in order (unit-name order inside an epoch),
//    which keeps the emitted alert stream bit-identical to workers=1 at
//    every (workers, lead, steal-seed, chaos) point; lead = 0 reduces
//    exactly to the barrier behaviour, batch boundaries included. With
//    lead > 0 the last `lead` epochs stay buffered until the next Drain() or
//    FinishDrains().
//
// Drained batches are published to every attached AlertSink at emission.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dbc/common/status.h"
#include "dbc/common/thread_pool.h"
#include "dbc/dbcatcher/alert_sink.h"
#include "dbc/dbcatcher/unit_pipeline.h"
#include "dbc/obs/metrics.h"
#include "dbc/obs/trace.h"

namespace dbc {

/// Epoch-pipelined work-stealing scheduler knobs. The schedule these shape
/// is an implementation detail: the alert stream is required to be invariant
/// under every setting (scheduler_fuzz_test), so they are pure
/// latency/throughput knobs.
struct SchedulerConfig {
  /// Use the epoch scheduler (workers != 1). Off = barrier fan-out per
  /// drain, exactly the previous engine behaviour.
  bool enabled = false;
  /// How many epochs a unit may run ahead of the oldest unemitted epoch.
  /// 0 = every Drain() barriers on its own epoch (pre-epoch semantics,
  /// batch boundaries included); L > 0 = Drain() #k returns epoch k-L and
  /// up to L epochs stay in flight, so one slow unit stalls nobody.
  size_t max_epoch_lead = 0;
  /// Seeds work-stealing victim selection; reshuffles the schedule only.
  uint64_t steal_seed = 0;
  /// Seeded schedule-chaos injection (tests); see thread_pool.h.
  SchedulerChaos chaos;
};

/// Engine configuration: the per-unit policy plus the sharding degree.
struct DetectionEngineConfig {
  UnitPipelineConfig pipeline;
  /// Worker threads for the parallel drain. 1 = run pipelines sequentially
  /// on the caller's thread (exactly the pre-engine behaviour); 0 = hardware
  /// concurrency.
  size_t workers = 1;
  /// Epoch-pipelined work-stealing scheduler (effective when workers != 1).
  SchedulerConfig scheduler;
  /// Self-observability. Off (default): no registry exists and the alert
  /// stream is bit-identical to an uninstrumented build. On: the engine owns
  /// a MetricsRegistry (+ TraceLog) wired through every registered pipeline.
  ObsConfig obs;
};

/// Engine-level drain metrics (null = off); per-unit metrics live on the
/// pipelines themselves.
struct EngineMetrics {
  Counter* drains = nullptr;            // Drain() batches completed
  Counter* alerts_published = nullptr;  // merged alerts handed to sinks
  Counter* steals = nullptr;            // tasks executed off a foreign deque
  Histogram* drain_seconds = nullptr;   // whole-drain wall time
  Histogram* merge_seconds = nullptr;   // deterministic-merge wall time
  Histogram* unit_drain_seconds = nullptr;  // one observation per unit task
  Gauge* queue_depth = nullptr;   // (unit, epoch) tasks still pending
  Gauge* epoch_lag = nullptr;     // epochs enqueued but not yet emitted
  Gauge* utilization = nullptr;   // busy-time / (lanes × fan-out wall time)
  Gauge* sink_dropped = nullptr;  // sum of sinks' back-pressure drops
  /// Cumulative busy seconds per pool worker ("worker" label = the worker
  /// that executed the task, which under stealing is not the owning lane).
  std::vector<Gauge*> worker_busy;
};

/// Multi-unit detection engine. All methods must be called from one thread
/// (the engine parallelizes internally); pipelines never share state, so no
/// cross-unit synchronisation exists anywhere on the detection path.
class DetectionEngine {
 public:
  /// Throws std::invalid_argument when the (normalized) detector or ingest
  /// config fails validation — a degenerate deployment fails fast instead of
  /// silently detecting nothing.
  explicit DetectionEngine(DetectionEngineConfig config = {});

  /// Quiesces any in-flight epoch tasks; unemitted epochs are discarded
  /// (call FinishDrains() first to keep them).
  ~DetectionEngine();

  /// Registers a unit with the given database roles. Replaces any unit with
  /// the same name (after quiescing that unit's in-flight epochs).
  void RegisterUnit(const std::string& unit, std::vector<DbRole> roles);

  /// The unit's pipeline, or nullptr when unregistered. The pointer stays
  /// valid until the unit is re-registered or the engine dies. In pipelined
  /// mode this waits for the unit's in-flight epoch tasks first, so the
  /// returned pipeline is safe to read or mutate from the caller's thread.
  UnitPipeline* Find(const std::string& unit);
  const UnitPipeline* Find(const std::string& unit) const;

  /// Feeds one complete tick of KPI vectors (values[db][kpi]) for `unit`.
  Status Ingest(const std::string& unit,
                const std::vector<std::array<double, kNumKpis>>& values);

  /// Feeds one (possibly degraded) collector sample for `unit`.
  Status IngestSample(const std::string& unit, const TelemetrySample& sample);

  /// Seals every pending ingestion frame for `unit`.
  Status FlushTelemetry(const std::string& unit);

  /// Applies a control-plane membership change to `unit` (join, leave,
  /// switchover, feed rename); see UnitPipeline::ApplyTopology.
  Status ApplyTopology(const std::string& unit, const TopologyUpdate& update);

  /// Resolves pending windows across all units — in parallel when workers
  /// > 1 — and returns merged alerts in deterministic (epoch, unit, tick)
  /// order. Barrier mode and lead=0 return this call's epoch; with
  /// max_epoch_lead = L > 0 the call enqueues its epoch and returns the
  /// epoch L drains back (the first L calls return empty batches — the
  /// concatenated stream over a whole run is unchanged). The batch is also
  /// published to every attached sink. A pipeline exception (impossible
  /// telemetry state, bug) propagates to the caller after all in-flight
  /// unit tasks finish.
  std::vector<Alert> Drain();

  /// Completes and emits every outstanding epoch (the tail the pipelined
  /// mode is still holding), publishing to sinks as usual. Returns the
  /// merged tail, empty when nothing is outstanding (always in barrier
  /// mode). Call at end of stream — and before checkpointing, so durable
  /// state never hides emitted-but-unlogged alerts.
  std::vector<Alert> FinishDrains();

  /// Blocks until no (unit, epoch) task is queued or running. Unlike
  /// FinishDrains() this emits nothing — retired epochs stay buffered.
  void WaitIdle() const;

  /// Attaches a sink; every subsequent Drain() batch is published to it.
  void AddSink(std::shared_ptr<AlertSink> sink);

  size_t unit_count() const { return pipelines_.size(); }

  /// Registered unit names in the deterministic merge order (name order).
  /// The checkpoint writer iterates this to serialize per-unit state.
  std::vector<std::string> UnitNames() const;

  /// Drain batches completed so far (persisted across restart so the trace
  /// tick and drain counters keep advancing monotonically).
  size_t drain_count() const { return drain_count_; }
  void set_drain_count(size_t count) { drain_count_ = count; }

  /// Effective parallelism (the pool's thread count, or 1 when sequential).
  size_t workers() const { return pool_ ? pool_->thread_count() : 1; }

  /// True when the epoch scheduler is active (scheduler.enabled and a pool
  /// exists). workers == 1 always runs sequentially on the caller's thread.
  bool pipelined() const {
    return pool_ != nullptr && config_.scheduler.enabled;
  }

  /// Per-worker scheduler counters (executed / stolen / busy seconds) from
  /// the pool; empty when sequential. Cheap enough for benches without obs.
  std::vector<WorkerStats> SchedulerStats() const;

  const DetectionEngineConfig& config() const { return config_; }

  /// The engine's metric registry, or nullptr when config().obs.enabled is
  /// false. Scrape with PrometheusText() / MetricsSnapshotJson() (see
  /// obs/exposition.h); valid for the engine's lifetime.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The structured per-stage trace ring, or nullptr when tracing is off.
  TraceLog* trace_log() { return trace_.get(); }
  const TraceLog* trace_log() const { return trace_.get(); }

 private:
  /// One enqueued epoch: a result slot per unit in the name-order snapshot
  /// taken at Drain() time (units registered later join the next epoch), and
  /// the count of slots still unfilled. Retired when remaining == 0.
  struct EpochJob {
    std::vector<std::vector<Alert>> batches;
    size_t remaining = 0;
  };
  /// Per-unit scheduler state: the FIFO of (epoch, slot) tasks and whether
  /// an activation is live on the pool. The FIFO + single activation
  /// serialize a unit's epochs, so a pipeline never runs concurrently with
  /// itself.
  struct UnitSched {
    std::deque<std::pair<uint64_t, size_t>> pending;
    bool active = false;
  };

  std::vector<Alert> DrainBarrier();
  std::vector<Alert> DrainPipelined();
  /// Pool-side activation: runs the unit's queued epochs to exhaustion.
  void RunUnitTasks(UnitPipeline* pipeline);
  /// Waits until every epoch <= `target` retired, then pops them from the
  /// reorder buffer in order and appends their batches to `merged`.
  void CollectThrough(uint64_t target, std::vector<Alert>* merged);
  /// Waits for a unit's queued/running epoch tasks (no-op when sequential).
  void WaitUnitIdle(UnitPipeline* pipeline) const;
  /// Publishes to sinks and updates emission-side metrics.
  void Publish(const std::vector<Alert>& merged);
  /// Rethrows the first pipeline exception after quiescing, engine usable
  /// afterwards (mirrors ParallelFor semantics).
  void MaybeRethrow();
  void RefreshSchedulerMetrics();

  DetectionEngineConfig config_;
  /// Name-ordered, which fixes the merge order of Drain().
  std::map<std::string, std::unique_ptr<UnitPipeline>> pipelines_;
  /// Epoch scheduler state. Declared before pool_ so in-flight tasks (joined
  /// by ~ThreadPool) never outlive what they touch.
  mutable std::mutex sched_mu_;
  mutable std::condition_variable sched_cv_;
  std::map<uint64_t, EpochJob> inflight_;
  std::map<const UnitPipeline*, UnitSched> unit_sched_;
  uint64_t next_epoch_ = 0;  // epochs enqueued so far
  size_t sched_pending_tasks_ = 0;
  std::exception_ptr sched_error_;
  uint64_t steals_seen_ = 0;  // last pool steal count folded into metrics
  /// Created only when config_.workers != 1.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::shared_ptr<AlertSink>> sinks_;
  /// Created only when config_.obs.enabled; outlives every pipeline.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceLog> trace_;
  EngineMetrics engine_metrics_;
  /// Drain batches completed (doubles as the trace tick for engine events).
  size_t drain_count_ = 0;
};

}  // namespace dbc
