#include "dbc/dbcatcher/detection_engine.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "dbc/common/stopwatch.h"

namespace dbc {

DetectionEngine::DetectionEngine(DetectionEngineConfig config)
    : config_(std::move(config)) {
  config_.pipeline = NormalizePipelineConfig(std::move(config_.pipeline));
  const Status detector_ok = config_.pipeline.detector.Validate();
  if (!detector_ok.ok()) {
    throw std::invalid_argument("detector config: " +
                                std::string(detector_ok.message()));
  }
  const Status ingest_ok = config_.pipeline.ingest.Validate();
  if (!ingest_ok.ok()) {
    throw std::invalid_argument("ingest config: " +
                                std::string(ingest_ok.message()));
  }
  if (config_.workers != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.workers);
  }
  if (config_.obs.enabled) {
    metrics_ = std::make_unique<MetricsRegistry>();
    if (config_.obs.trace) {
      trace_ = std::make_unique<TraceLog>(config_.obs.trace_capacity);
    }
    engine_metrics_.drains = metrics_->GetCounter("dbc_engine_drains_total");
    engine_metrics_.alerts_published =
        metrics_->GetCounter("dbc_engine_alerts_published_total");
    engine_metrics_.drain_seconds =
        metrics_->GetHistogram("dbc_engine_drain_seconds");
    engine_metrics_.merge_seconds =
        metrics_->GetHistogram("dbc_engine_merge_seconds");
    engine_metrics_.unit_drain_seconds =
        metrics_->GetHistogram("dbc_engine_unit_drain_seconds");
    engine_metrics_.queue_depth = metrics_->GetGauge("dbc_engine_queue_depth");
    engine_metrics_.utilization = metrics_->GetGauge("dbc_engine_utilization");
    engine_metrics_.sink_dropped =
        metrics_->GetGauge("dbc_engine_sink_dropped_total");
    const size_t lanes = workers();
    engine_metrics_.worker_busy.resize(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
      engine_metrics_.worker_busy[lane] = metrics_->GetGauge(
          "dbc_engine_worker_busy_seconds", {{"worker", std::to_string(lane)}});
    }
  }
}

void DetectionEngine::RegisterUnit(const std::string& unit,
                                   std::vector<DbRole> roles) {
  auto pipeline = std::make_unique<UnitPipeline>(unit, std::move(roles),
                                                 config_.pipeline);
  if (metrics_ != nullptr) {
    pipeline->EnableObservability(metrics_.get(), trace_.get());
  }
  pipelines_[unit] = std::move(pipeline);
}

UnitPipeline* DetectionEngine::Find(const std::string& unit) {
  const auto it = pipelines_.find(unit);
  return it == pipelines_.end() ? nullptr : it->second.get();
}

const UnitPipeline* DetectionEngine::Find(const std::string& unit) const {
  const auto it = pipelines_.find(unit);
  return it == pipelines_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DetectionEngine::UnitNames() const {
  std::vector<std::string> names;
  names.reserve(pipelines_.size());
  for (const auto& [name, pipeline] : pipelines_) names.push_back(name);
  return names;
}

Status DetectionEngine::Ingest(
    const std::string& unit,
    const std::vector<std::array<double, kNumKpis>>& values) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Tick(values);
}

Status DetectionEngine::IngestSample(const std::string& unit,
                                     const TelemetrySample& sample) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Offer(sample);
}

Status DetectionEngine::FlushTelemetry(const std::string& unit) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Flush();
}

Status DetectionEngine::ApplyTopology(const std::string& unit,
                                      const TopologyUpdate& update) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->ApplyTopology(update);
}

std::vector<Alert> DetectionEngine::Drain() {
  const bool observed = metrics_ != nullptr;
  Stopwatch watch;  // read only on the observed path

  // Snapshot the name-ordered pipelines; slot i of `per_unit` belongs to
  // exactly one task, so workers never contend.
  std::vector<UnitPipeline*> order;
  order.reserve(pipelines_.size());
  for (const auto& [name, pipeline] : pipelines_) order.push_back(pipeline.get());

  std::vector<std::vector<Alert>> per_unit(order.size());
  Set(engine_metrics_.queue_depth, static_cast<double>(order.size()));
  double busy_seconds = 0.0;
  double fan_seconds = 0.0;
  size_t lanes = 1;
  if (pool_ != nullptr && order.size() > 1) {
    lanes = std::min(order.size(), pool_->thread_count());
    if (observed) {
      // Lane-local busy accumulators: each lane owns its slot for the whole
      // ParallelFor, so no synchronization beyond the join is needed. The
      // queue-depth gauge and the unit histogram are relaxed atomics and may
      // be written from any worker.
      std::atomic<size_t> remaining{order.size()};
      std::vector<double> lane_busy(pool_->thread_count(), 0.0);
      pool_->ParallelFor(order.size(), [&](size_t lane, size_t i) {
        Stopwatch unit_watch;
        per_unit[i] = order[i]->Drain();
        const double seconds = unit_watch.ElapsedSeconds();
        lane_busy[lane] += seconds;
        Observe(engine_metrics_.unit_drain_seconds, seconds);
        Set(engine_metrics_.queue_depth,
            static_cast<double>(
                remaining.fetch_sub(1, std::memory_order_relaxed) - 1));
      });
      for (size_t lane = 0; lane < lane_busy.size(); ++lane) {
        busy_seconds += lane_busy[lane];
        if (lane_busy[lane] > 0.0 &&
            lane < engine_metrics_.worker_busy.size()) {
          engine_metrics_.worker_busy[lane]->Add(lane_busy[lane]);
        }
      }
      fan_seconds = watch.LapSeconds();
    } else {
      pool_->ParallelFor(order.size(),
                         [&](size_t i) { per_unit[i] = order[i]->Drain(); });
    }
  } else if (observed) {
    for (size_t i = 0; i < order.size(); ++i) {
      Stopwatch unit_watch;
      per_unit[i] = order[i]->Drain();
      const double seconds = unit_watch.ElapsedSeconds();
      busy_seconds += seconds;
      Observe(engine_metrics_.unit_drain_seconds, seconds);
      Set(engine_metrics_.queue_depth,
          static_cast<double>(order.size() - i - 1));
    }
    if (busy_seconds > 0.0 && !engine_metrics_.worker_busy.empty()) {
      engine_metrics_.worker_busy[0]->Add(busy_seconds);
    }
    fan_seconds = watch.LapSeconds();
  } else {
    for (size_t i = 0; i < order.size(); ++i) per_unit[i] = order[i]->Drain();
  }

  // Deterministic merge: unit-name order, each unit's batch already in tick
  // order — byte-for-byte what a sequential walk produces.
  size_t total = 0;
  for (const auto& batch : per_unit) total += batch.size();
  std::vector<Alert> merged;
  merged.reserve(total);
  for (auto& batch : per_unit) {
    for (Alert& alert : batch) merged.push_back(std::move(alert));
  }

  ++drain_count_;
  if (observed) {
    const double merge_seconds = watch.LapSeconds();
    Observe(engine_metrics_.merge_seconds, merge_seconds);
    Observe(engine_metrics_.drain_seconds, fan_seconds + merge_seconds);
    Inc(engine_metrics_.drains);
    Inc(engine_metrics_.alerts_published, merged.size());
    if (fan_seconds > 0.0) {
      Set(engine_metrics_.utilization,
          busy_seconds / (fan_seconds * static_cast<double>(lanes)));
    }
    if (trace_ != nullptr) {
      trace_->Record({"", "engine-drain", drain_count_,
                      fan_seconds + merge_seconds, merged.size()});
    }
  }

  for (const auto& sink : sinks_) sink->Publish(merged);
  if (observed && !sinks_.empty()) {
    size_t dropped = 0;
    for (const auto& sink : sinks_) dropped += sink->dropped();
    Set(engine_metrics_.sink_dropped, static_cast<double>(dropped));
  }
  return merged;
}

void DetectionEngine::AddSink(std::shared_ptr<AlertSink> sink) {
  if (sink != nullptr) sinks_.push_back(std::move(sink));
}

}  // namespace dbc
