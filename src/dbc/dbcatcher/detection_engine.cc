#include "dbc/dbcatcher/detection_engine.h"

#include <stdexcept>
#include <utility>

namespace dbc {

DetectionEngine::DetectionEngine(DetectionEngineConfig config)
    : config_(std::move(config)) {
  config_.pipeline = NormalizePipelineConfig(std::move(config_.pipeline));
  const Status detector_ok = config_.pipeline.detector.Validate();
  if (!detector_ok.ok()) {
    throw std::invalid_argument("detector config: " +
                                std::string(detector_ok.message()));
  }
  const Status ingest_ok = config_.pipeline.ingest.Validate();
  if (!ingest_ok.ok()) {
    throw std::invalid_argument("ingest config: " +
                                std::string(ingest_ok.message()));
  }
  if (config_.workers != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.workers);
  }
}

void DetectionEngine::RegisterUnit(const std::string& unit,
                                   std::vector<DbRole> roles) {
  pipelines_[unit] = std::make_unique<UnitPipeline>(unit, std::move(roles),
                                                    config_.pipeline);
}

UnitPipeline* DetectionEngine::Find(const std::string& unit) {
  const auto it = pipelines_.find(unit);
  return it == pipelines_.end() ? nullptr : it->second.get();
}

const UnitPipeline* DetectionEngine::Find(const std::string& unit) const {
  const auto it = pipelines_.find(unit);
  return it == pipelines_.end() ? nullptr : it->second.get();
}

Status DetectionEngine::Ingest(
    const std::string& unit,
    const std::vector<std::array<double, kNumKpis>>& values) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Tick(values);
}

Status DetectionEngine::IngestSample(const std::string& unit,
                                     const TelemetrySample& sample) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Offer(sample);
}

Status DetectionEngine::FlushTelemetry(const std::string& unit) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Flush();
}

Status DetectionEngine::ApplyTopology(const std::string& unit,
                                      const TopologyUpdate& update) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->ApplyTopology(update);
}

std::vector<Alert> DetectionEngine::Drain() {
  // Snapshot the name-ordered pipelines; slot i of `per_unit` belongs to
  // exactly one task, so workers never contend.
  std::vector<UnitPipeline*> order;
  order.reserve(pipelines_.size());
  for (const auto& [name, pipeline] : pipelines_) order.push_back(pipeline.get());

  std::vector<std::vector<Alert>> per_unit(order.size());
  if (pool_ != nullptr && order.size() > 1) {
    pool_->ParallelFor(order.size(),
                       [&](size_t i) { per_unit[i] = order[i]->Drain(); });
  } else {
    for (size_t i = 0; i < order.size(); ++i) per_unit[i] = order[i]->Drain();
  }

  // Deterministic merge: unit-name order, each unit's batch already in tick
  // order — byte-for-byte what a sequential walk produces.
  size_t total = 0;
  for (const auto& batch : per_unit) total += batch.size();
  std::vector<Alert> merged;
  merged.reserve(total);
  for (auto& batch : per_unit) {
    for (Alert& alert : batch) merged.push_back(std::move(alert));
  }

  for (const auto& sink : sinks_) sink->Publish(merged);
  return merged;
}

void DetectionEngine::AddSink(std::shared_ptr<AlertSink> sink) {
  if (sink != nullptr) sinks_.push_back(std::move(sink));
}

}  // namespace dbc
