#include "dbc/dbcatcher/detection_engine.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "dbc/common/stopwatch.h"

namespace dbc {

DetectionEngine::DetectionEngine(DetectionEngineConfig config)
    : config_(std::move(config)) {
  config_.pipeline = NormalizePipelineConfig(std::move(config_.pipeline));
  const Status detector_ok = config_.pipeline.detector.Validate();
  if (!detector_ok.ok()) {
    throw std::invalid_argument("detector config: " +
                                std::string(detector_ok.message()));
  }
  const Status ingest_ok = config_.pipeline.ingest.Validate();
  if (!ingest_ok.ok()) {
    throw std::invalid_argument("ingest config: " +
                                std::string(ingest_ok.message()));
  }
  if (config_.workers != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.workers,
                                         config_.scheduler.steal_seed,
                                         config_.scheduler.chaos);
  }
  if (config_.obs.enabled) {
    metrics_ = std::make_unique<MetricsRegistry>();
    if (config_.obs.trace) {
      trace_ = std::make_unique<TraceLog>(config_.obs.trace_capacity);
    }
    engine_metrics_.drains = metrics_->GetCounter("dbc_engine_drains_total");
    engine_metrics_.alerts_published =
        metrics_->GetCounter("dbc_engine_alerts_published_total");
    engine_metrics_.steals = metrics_->GetCounter("dbc_engine_steals_total");
    engine_metrics_.drain_seconds =
        metrics_->GetHistogram("dbc_engine_drain_seconds");
    engine_metrics_.merge_seconds =
        metrics_->GetHistogram("dbc_engine_merge_seconds");
    engine_metrics_.unit_drain_seconds =
        metrics_->GetHistogram("dbc_engine_unit_drain_seconds");
    engine_metrics_.queue_depth = metrics_->GetGauge("dbc_engine_queue_depth");
    engine_metrics_.epoch_lag = metrics_->GetGauge("dbc_engine_epoch_lag");
    engine_metrics_.utilization = metrics_->GetGauge("dbc_engine_utilization");
    engine_metrics_.sink_dropped =
        metrics_->GetGauge("dbc_engine_sink_dropped_total");
    const size_t lanes = workers();
    engine_metrics_.worker_busy.resize(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
      engine_metrics_.worker_busy[lane] = metrics_->GetGauge(
          "dbc_engine_worker_busy_seconds", {{"worker", std::to_string(lane)}});
    }
  }
}

DetectionEngine::~DetectionEngine() {
  // Quiesce before members destruct: in-flight epoch tasks touch the metrics
  // registry and scheduler state, which die before pool_ joins its workers.
  WaitIdle();
}

void DetectionEngine::RegisterUnit(const std::string& unit,
                                   std::vector<DbRole> roles) {
  const auto old = pipelines_.find(unit);
  if (old != pipelines_.end()) {
    // Replacing: the outgoing pipeline may have queued epoch tasks.
    WaitUnitIdle(old->second.get());
    std::lock_guard<std::mutex> lock(sched_mu_);
    unit_sched_.erase(old->second.get());
  }
  auto pipeline = std::make_unique<UnitPipeline>(unit, std::move(roles),
                                                 config_.pipeline);
  if (metrics_ != nullptr) {
    pipeline->EnableObservability(metrics_.get(), trace_.get());
  }
  pipelines_[unit] = std::move(pipeline);
}

UnitPipeline* DetectionEngine::Find(const std::string& unit) {
  const auto it = pipelines_.find(unit);
  if (it == pipelines_.end()) return nullptr;
  // The caller may read or mutate the pipeline (ingest, flush, topology,
  // triage taps), and UnitPipeline is not thread-safe: serialize against any
  // in-flight epoch task for this unit.
  WaitUnitIdle(it->second.get());
  return it->second.get();
}

const UnitPipeline* DetectionEngine::Find(const std::string& unit) const {
  const auto it = pipelines_.find(unit);
  if (it == pipelines_.end()) return nullptr;
  WaitUnitIdle(it->second.get());
  return it->second.get();
}

std::vector<std::string> DetectionEngine::UnitNames() const {
  std::vector<std::string> names;
  names.reserve(pipelines_.size());
  for (const auto& [name, pipeline] : pipelines_) names.push_back(name);
  return names;
}

Status DetectionEngine::Ingest(
    const std::string& unit,
    const std::vector<std::array<double, kNumKpis>>& values) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Tick(values);
}

Status DetectionEngine::IngestSample(const std::string& unit,
                                     const TelemetrySample& sample) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Offer(sample);
}

Status DetectionEngine::FlushTelemetry(const std::string& unit) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->Flush();
}

Status DetectionEngine::ApplyTopology(const std::string& unit,
                                      const TopologyUpdate& update) {
  UnitPipeline* pipeline = Find(unit);
  if (pipeline == nullptr) {
    return Status::NotFound("unit not registered: " + unit);
  }
  return pipeline->ApplyTopology(update);
}

std::vector<Alert> DetectionEngine::Drain() {
  return pipelined() ? DrainPipelined() : DrainBarrier();
}

std::vector<Alert> DetectionEngine::DrainBarrier() {
  const bool observed = metrics_ != nullptr;
  Stopwatch watch;  // read only on the observed path

  // Snapshot the name-ordered pipelines; slot i of `per_unit` belongs to
  // exactly one task, so workers never contend.
  std::vector<UnitPipeline*> order;
  order.reserve(pipelines_.size());
  for (const auto& [name, pipeline] : pipelines_) order.push_back(pipeline.get());

  std::vector<std::vector<Alert>> per_unit(order.size());
  Set(engine_metrics_.queue_depth, static_cast<double>(order.size()));
  double busy_seconds = 0.0;
  double fan_seconds = 0.0;
  size_t lanes = 1;
  if (pool_ != nullptr && order.size() > 1) {
    lanes = std::min(order.size(), pool_->thread_count());
    if (observed) {
      // Worker-local busy accumulators, indexed by the *executing* worker
      // (under stealing the ParallelFor lane says nothing about where the
      // task ran). A worker executes one task at a time and only writes its
      // own slot, so no synchronization beyond the join is needed. The
      // queue-depth gauge and the unit histogram are relaxed atomics and may
      // be written from any worker.
      std::atomic<size_t> remaining{order.size()};
      std::vector<double> worker_busy_acc(pool_->thread_count(), 0.0);
      pool_->ParallelFor(order.size(), [&](size_t i) {
        Stopwatch unit_watch;
        per_unit[i] = order[i]->Drain();
        const double seconds = unit_watch.ElapsedSeconds();
        const size_t me = pool_->CurrentWorker();
        if (me < worker_busy_acc.size()) worker_busy_acc[me] += seconds;
        Observe(engine_metrics_.unit_drain_seconds, seconds);
        Set(engine_metrics_.queue_depth,
            static_cast<double>(
                remaining.fetch_sub(1, std::memory_order_relaxed) - 1));
      });
      for (size_t w = 0; w < worker_busy_acc.size(); ++w) {
        busy_seconds += worker_busy_acc[w];
        if (worker_busy_acc[w] > 0.0 &&
            w < engine_metrics_.worker_busy.size()) {
          engine_metrics_.worker_busy[w]->Add(worker_busy_acc[w]);
        }
      }
      fan_seconds = watch.LapSeconds();
    } else {
      pool_->ParallelFor(order.size(),
                         [&](size_t i) { per_unit[i] = order[i]->Drain(); });
    }
  } else if (observed) {
    for (size_t i = 0; i < order.size(); ++i) {
      Stopwatch unit_watch;
      per_unit[i] = order[i]->Drain();
      const double seconds = unit_watch.ElapsedSeconds();
      busy_seconds += seconds;
      Observe(engine_metrics_.unit_drain_seconds, seconds);
      Set(engine_metrics_.queue_depth,
          static_cast<double>(order.size() - i - 1));
    }
    if (busy_seconds > 0.0 && !engine_metrics_.worker_busy.empty()) {
      engine_metrics_.worker_busy[0]->Add(busy_seconds);
    }
    fan_seconds = watch.LapSeconds();
  } else {
    for (size_t i = 0; i < order.size(); ++i) per_unit[i] = order[i]->Drain();
  }

  // Deterministic merge: unit-name order, each unit's batch already in tick
  // order — byte-for-byte what a sequential walk produces.
  size_t total = 0;
  for (const auto& batch : per_unit) total += batch.size();
  std::vector<Alert> merged;
  merged.reserve(total);
  for (auto& batch : per_unit) {
    for (Alert& alert : batch) merged.push_back(std::move(alert));
  }

  ++drain_count_;
  if (observed) {
    const double merge_seconds = watch.LapSeconds();
    Observe(engine_metrics_.merge_seconds, merge_seconds);
    Observe(engine_metrics_.drain_seconds, fan_seconds + merge_seconds);
    Inc(engine_metrics_.drains);
    if (fan_seconds > 0.0) {
      Set(engine_metrics_.utilization,
          busy_seconds / (fan_seconds * static_cast<double>(lanes)));
    }
    RefreshSchedulerMetrics();
    if (trace_ != nullptr) {
      trace_->Record({"", "engine-drain", drain_count_,
                      fan_seconds + merge_seconds, merged.size()});
    }
  }

  Publish(merged);
  return merged;
}

std::vector<Alert> DetectionEngine::DrainPipelined() {
  const bool observed = metrics_ != nullptr;
  Stopwatch watch;  // read only on the observed path

  // Enqueue epoch E: one (unit, epoch) task per pipeline, hinted to a
  // per-unit home lane. A unit with an activation already live just grows
  // its FIFO — the activation loop keeps the unit's epochs ordered and
  // non-concurrent.
  uint64_t epoch;
  {
    std::unique_lock<std::mutex> lock(sched_mu_);
    epoch = next_epoch_++;
    EpochJob& job = inflight_[epoch];
    job.batches.resize(pipelines_.size());
    job.remaining = pipelines_.size();
    size_t slot = 0;
    for (const auto& [name, pipeline] : pipelines_) {
      UnitPipeline* p = pipeline.get();
      UnitSched& us = unit_sched_[p];
      us.pending.emplace_back(epoch, slot);
      ++sched_pending_tasks_;
      if (!us.active) {
        us.active = true;
        // Safe under sched_mu_: pool locks are only ever taken after it,
        // and tasks take sched_mu_ with no pool lock held.
        pool_->Post(slot, [this, p] { RunUnitTasks(p); });
      }
      ++slot;
    }
    if (job.remaining == 0) inflight_.erase(epoch);  // empty fleet
  }

  // Emit epoch E - lead. The wait target depends only on call count and
  // config, never on timing, so batch boundaries are deterministic; lead=0
  // is exactly the barrier behaviour.
  std::vector<Alert> merged;
  const uint64_t lead = config_.scheduler.max_epoch_lead;
  if (epoch >= lead) CollectThrough(epoch - lead, &merged);
  MaybeRethrow();

  ++drain_count_;
  if (observed) {
    const double total_seconds = watch.ElapsedSeconds();
    Observe(engine_metrics_.drain_seconds, total_seconds);
    Inc(engine_metrics_.drains);
    RefreshSchedulerMetrics();
    if (trace_ != nullptr) {
      trace_->Record(
          {"", "engine-drain", drain_count_, total_seconds, merged.size()});
    }
  }

  Publish(merged);
  return merged;
}

std::vector<Alert> DetectionEngine::FinishDrains() {
  std::vector<Alert> merged;
  if (!pipelined()) return merged;
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (next_epoch_ == 0) return merged;
    target = next_epoch_ - 1;
  }
  CollectThrough(target, &merged);
  MaybeRethrow();
  if (metrics_ != nullptr) RefreshSchedulerMetrics();
  if (!merged.empty()) Publish(merged);
  return merged;
}

void DetectionEngine::RunUnitTasks(UnitPipeline* pipeline) {
  const bool observed = metrics_ != nullptr;
  std::unique_lock<std::mutex> lock(sched_mu_);
  // The map node survives while this activation is live: RegisterUnit only
  // erases a unit's entry after WaitUnitIdle saw it inactive.
  UnitSched& us = unit_sched_[pipeline];
  for (;;) {
    if (us.pending.empty()) {
      us.active = false;
      sched_cv_.notify_all();
      return;
    }
    const uint64_t epoch = us.pending.front().first;
    const size_t slot = us.pending.front().second;
    us.pending.pop_front();
    lock.unlock();

    std::vector<Alert> batch;
    try {
      Stopwatch unit_watch;  // read only on the observed path
      batch = pipeline->Drain();
      if (observed) {
        const double seconds = unit_watch.ElapsedSeconds();
        Observe(engine_metrics_.unit_drain_seconds, seconds);
        const size_t me = pool_->CurrentWorker();
        if (me < engine_metrics_.worker_busy.size()) {
          engine_metrics_.worker_busy[me]->Add(seconds);
        }
      }
    } catch (...) {
      lock.lock();
      if (!sched_error_) sched_error_ = std::current_exception();
      lock.unlock();
      batch.clear();  // the slot still retires so collectors never deadlock
    }

    lock.lock();
    const auto it = inflight_.find(epoch);
    if (it != inflight_.end()) {
      it->second.batches[slot] = std::move(batch);
      if (--it->second.remaining == 0) sched_cv_.notify_all();
    }
    --sched_pending_tasks_;
  }
}

void DetectionEngine::CollectThrough(uint64_t target,
                                     std::vector<Alert>* merged) {
  const bool observed = metrics_ != nullptr;
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [this, target] {
    for (auto it = inflight_.begin();
         it != inflight_.end() && it->first <= target; ++it) {
      if (it->second.remaining != 0) return false;
    }
    return true;
  });
  Stopwatch merge_watch;  // wait time excluded; read only when observed
  // Pop retired epochs in order; inside an epoch slots are already in
  // unit-name order, so the concatenation equals the sequential walk.
  while (!inflight_.empty() && inflight_.begin()->first <= target) {
    EpochJob job = std::move(inflight_.begin()->second);
    inflight_.erase(inflight_.begin());
    lock.unlock();
    size_t total = merged->size();
    for (const auto& batch : job.batches) total += batch.size();
    merged->reserve(total);
    for (auto& batch : job.batches) {
      for (Alert& alert : batch) merged->push_back(std::move(alert));
    }
    lock.lock();
  }
  lock.unlock();
  if (observed) {
    Observe(engine_metrics_.merge_seconds, merge_watch.ElapsedSeconds());
  }
}

void DetectionEngine::WaitUnitIdle(UnitPipeline* pipeline) const {
  if (!pipelined()) return;
  std::unique_lock<std::mutex> lock(sched_mu_);
  const auto it = unit_sched_.find(pipeline);
  if (it == unit_sched_.end()) return;
  sched_cv_.wait(lock, [&it] {
    return !it->second.active && it->second.pending.empty();
  });
}

void DetectionEngine::WaitIdle() const {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(sched_mu_);
  sched_cv_.wait(lock, [this] {
    if (sched_pending_tasks_ != 0) return false;
    for (const auto& [pipeline, us] : unit_sched_) {
      if (us.active) return false;
    }
    return true;
  });
}

void DetectionEngine::MaybeRethrow() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(sched_mu_);
    if (!sched_error_) return;
    // Mirror ParallelFor: join everything in flight, then rethrow the first
    // failure. Outstanding epochs are discarded (their state is partial);
    // the engine stays usable.
    sched_cv_.wait(lock, [this] {
      if (sched_pending_tasks_ != 0) return false;
      for (const auto& [pipeline, us] : unit_sched_) {
        if (us.active) return false;
      }
      return true;
    });
    inflight_.clear();
    error = std::exchange(sched_error_, nullptr);
  }
  std::rethrow_exception(error);
}

void DetectionEngine::Publish(const std::vector<Alert>& merged) {
  Inc(engine_metrics_.alerts_published, merged.size());
  for (const auto& sink : sinks_) sink->Publish(merged);
  if (metrics_ != nullptr && !sinks_.empty()) {
    size_t dropped = 0;
    for (const auto& sink : sinks_) dropped += sink->dropped();
    Set(engine_metrics_.sink_dropped, static_cast<double>(dropped));
  }
}

void DetectionEngine::RefreshSchedulerMetrics() {
  if (metrics_ == nullptr) return;
  if (pool_ != nullptr) {
    const uint64_t steals_now = pool_->steals();
    if (steals_now > steals_seen_) {
      Inc(engine_metrics_.steals, steals_now - steals_seen_);
      steals_seen_ = steals_now;
    }
  }
  if (pipelined()) {
    std::lock_guard<std::mutex> lock(sched_mu_);
    Set(engine_metrics_.queue_depth,
        static_cast<double>(sched_pending_tasks_));
    Set(engine_metrics_.epoch_lag, static_cast<double>(inflight_.size()));
  }
}

std::vector<WorkerStats> DetectionEngine::SchedulerStats() const {
  return pool_ != nullptr ? pool_->Stats() : std::vector<WorkerStats>{};
}

void DetectionEngine::AddSink(std::shared_ptr<AlertSink> sink) {
  if (sink != nullptr) sinks_.push_back(std::move(sink));
}

}  // namespace dbc
