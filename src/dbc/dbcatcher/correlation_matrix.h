// Correlation matrices (Eq. 5) and the per-window correlation analyzer.
//
// For a window of the unit's trace, one symmetric N x N matrix per KPI holds
// the pairwise KCD of the databases. Pair eligibility honours Table II: on
// "R-R" KPIs the primary's counters reflect replication apply and do not
// participate; databases that are idle in the window (existing but unused)
// are excluded entirely (§III-C).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dbc/cloudsim/unit_data.h"
#include "dbc/correlation/kcd.h"
#include "dbc/correlation/kcd_fast.h"
#include "dbc/dbcatcher/config.h"
#include "dbc/obs/metrics.h"
#include "dbc/storage/column_store.h"

namespace dbc {

/// Symmetric pairwise-score matrix for one KPI over one window. Entries for
/// ineligible pairs are NaN; the diagonal is 1.
class CorrelationMatrix {
 public:
  explicit CorrelationMatrix(size_t n);

  size_t size() const { return n_; }
  double At(size_t i, size_t j) const;
  void Set(size_t i, size_t j, double score);

  /// Scores of database j against every eligible peer (skips NaN entries) —
  /// the KCDS list of Algorithm 1.
  std::vector<double> PeerScores(size_t j) const;

 private:
  size_t n_;
  std::vector<double> scores_;  // row-major full matrix for simplicity
};

/// Memo of KCD evaluations keyed by (kpi, pair, window), so the adaptive
/// threshold search (which replays the same windows under many genomes) pays
/// for each correlation once. Not thread-safe.
class KcdCache {
 public:
  /// Bit budget of the packed key: 5 bits kpi | 8 bits db a | 8 bits db b |
  /// 28 bits window begin | 15 bits window length. Within these bounds the
  /// packing is injective (fields occupy disjoint bit ranges); outside them
  /// it would silently alias, so Key() asserts the bounds and callers gate
  /// cache use on KeyInBounds().
  static constexpr size_t kMaxKpi = 1u << 5;
  static constexpr size_t kMaxDb = 1u << 8;
  static constexpr size_t kMaxBegin = 1u << 28;
  static constexpr size_t kMaxLen = 1u << 15;

  /// True when every field fits its bit range — the precondition under which
  /// Key() provably cannot collide. A stream that outlives kMaxBegin ticks
  /// (8.5 years at the paper's 5 s cadence) simply stops memoizing instead of
  /// returning a stale epoch's score.
  static bool KeyInBounds(size_t kpi, size_t a, size_t b, size_t begin,
                          size_t len) {
    return kpi < kMaxKpi && a < kMaxDb && b < kMaxDb && begin < kMaxBegin &&
           len < kMaxLen;
  }

  /// Packs the key; (a, b) is unordered (the pair is symmetric). Asserts
  /// KeyInBounds in debug builds.
  static uint64_t Key(size_t kpi, size_t a, size_t b, size_t begin, size_t len);

  bool Lookup(uint64_t key, double* score) const;
  void Insert(uint64_t key, double score);
  size_t size() const { return map_.size(); }

  /// Drops every memoized window beginning before `begin` (absolute ticks).
  /// Called by the trimming stream so the memo stays bounded too. Returns
  /// how many entries were evicted (the stream's eviction counter).
  size_t EvictBefore(size_t begin);

  /// Drops every memoized score. Safe at any point: the memo is
  /// value-transparent (differentially tested against recomputation), so a
  /// recovered stream that restarts with an empty cache scores identically.
  void Clear() { map_.clear(); }

 private:
  std::unordered_map<uint64_t, double> map_;
};

/// Kernel-level observability hooks for one analyzer (null = off). Counters
/// never influence scores; they are installed by the streaming layer so the
/// kernel mix (fast / reference / masked), the prefix-table sharing rate, and
/// the memo hit rate are scrapeable per unit.
struct AnalyzerMetrics {
  Counter* kcd_fast_pairs = nullptr;       // pair scores via the fast kernel
  Counter* kcd_reference_pairs = nullptr;  // pair scores via the reference
  Counter* kcd_masked_pairs = nullptr;     // degraded pairs (masked kernel)
  Counter* cache_hits = nullptr;           // KcdCache lookups that hit
  Counter* stats_built = nullptr;          // prefix tables built
  Counter* stats_reused = nullptr;         // tables served from the memo
};

/// Computes correlation matrices and per-database aggregate scores for
/// arbitrary windows of one unit.
///
/// When the configured measure is KCD and config.kcd.impl == KcdImpl::kFast,
/// pair scores run through the prefix-sum kernel (kcd_fast.h) and the
/// per-series tables are memoized per (kpi, db, window) — every series is
/// touched by N-1 pairs of its KPI matrix, so Matrix()/AggregateScore() build
/// each table once instead of N-1 times.
class CorrelationAnalyzer {
 public:
  /// `cache` may be null. The unit must outlive the analyzer.
  CorrelationAnalyzer(const UnitData& unit, const DbcatcherConfig& config,
                      KcdCache* cache = nullptr);

  /// Store-backed analyzer: windows address absolute ticks of a ColumnStore
  /// (the online path). Hot windows feed the kernels through zero-copy
  /// SeriesViews; windows reaching into the cold tier are inflated
  /// bit-exactly, so scores cannot depend on which tier served the bytes.
  /// Validity comes from the store's bitmaps (SetValidity is for the
  /// UnitData backend only). The store and roles must outlive the analyzer.
  CorrelationAnalyzer(const ColumnStore& store,
                      const std::vector<DbRole>& roles,
                      const DbcatcherConfig& config, KcdCache* cache = nullptr);

  /// Backend-independent trace geometry: [earliest(), length()) is the
  /// addressable tick range (earliest() is 0 for a UnitData backend, the
  /// store's retained floor otherwise). Diagnosis and the level summaries run
  /// off these instead of reaching into UnitData.
  size_t num_dbs() const {
    return store_ != nullptr ? store_->num_dbs() : unit_->num_dbs();
  }
  size_t length() const {
    return store_ != nullptr ? store_->end_tick() : unit_->length();
  }
  size_t earliest() const {
    return store_ != nullptr ? store_->retained_from() : 0;
  }
  DbRole role(size_t db) const {
    return store_ != nullptr ? (*roles_)[db] : unit_->roles[db];
  }

  /// Copies [begin, end) of one series (clamped to the addressable range;
  /// cold ticks are inflated). The materializing accessor for consumers that
  /// need owned data — diagnosis trend windows, capacity growth.
  std::vector<double> CopyWindow(size_t kpi, size_t db, size_t begin,
                                 size_t end) const;

  /// Installs a telemetry-validity mask: validity[db][t] != 0 when the
  /// sample at (db, t) is usable (fresh or in-budget imputed, and the
  /// database is not quarantined). Indices are in the unit's (buffer)
  /// coordinates. Databases whose valid fraction inside a window falls
  /// below config.min_valid_fraction drop out of every peer set for that
  /// window, so healthy replicas keep an uncontaminated UKPIC quorum.
  /// Pass nullptr to clear. The mask must outlive the analyzer.
  void SetValidity(const std::vector<std::vector<uint8_t>>* validity) {
    validity_ = validity;
  }

  /// Offset added to window begins when forming cache keys. A trimming
  /// stream passes its trim offset so buffer-relative coordinates never
  /// collide with keys from earlier epochs.
  void SetCacheTickOffset(size_t offset) { cache_offset_ = offset; }

  /// Installs observability counters (copied; null members stay no-ops).
  void set_metrics(const AnalyzerMetrics& metrics) { metrics_ = metrics; }

  /// Prefix tables built so far (tests assert the batching actually shares).
  size_t stats_built() const { return stats_built_; }
  /// Table requests served from the memo.
  size_t stats_reused() const { return stats_reused_; }

  /// True when database `db` shows activity within [begin, begin+len).
  bool DbActive(size_t db, size_t begin, size_t len) const;

  /// True when `db`'s telemetry inside [begin, begin+len) is usable (always
  /// true without a validity mask).
  bool DbValid(size_t db, size_t begin, size_t len) const;

  /// The CM of Eq. 5 for one KPI over [begin, begin+len).
  CorrelationMatrix Matrix(size_t kpi, size_t begin, size_t len);

  /// Aggregate correlation of `db` on `kpi` over the window: the best KCD
  /// against any eligible peer (an abnormal database correlates with *no*
  /// peer, a healthy one correlates with the other healthy ones). Returns
  /// NaN when the database does not participate on this KPI (idle, primary
  /// on an R-R KPI, or no eligible peer).
  double AggregateScore(size_t kpi, size_t db, size_t begin, size_t len);

  /// Pair eligibility on a KPI per Table II + activity.
  bool PairEligible(size_t kpi, size_t a, size_t b, size_t begin,
                    size_t len) const;

 private:
  /// Memoized tables beyond this are dropped wholesale: windows advance
  /// monotonically, so old tables are dead weight, and a bounded memo keeps
  /// long offline replays (DetectUnit over multi-thousand-tick traces) flat.
  static constexpr size_t kStatsMemoCap = 1024;

  /// True when the validity mask marks (db, t) unusable.
  bool MaskedAt(size_t db, size_t t) const;
  double PairScore(size_t kpi, size_t a, size_t b, size_t begin, size_t len);
  /// The (possibly memoized) prefix table of one series' window slice.
  const KcdWindowStats& StatsFor(size_t kpi, size_t db, size_t begin,
                                 size_t len);
  /// The (possibly memoized) masked table — zero-filled batched moments plus
  /// the effective mask — of one series' window slice.
  const KcdMaskedWindowStats& MaskedStatsFor(size_t kpi, size_t db,
                                             size_t begin, size_t len);
  /// One window of one series as a stride-1 view: zero-copy off the store's
  /// hot column when possible, otherwise materialized into `*scratch` (cold
  /// reads, UnitData backend). Clamped to the addressable range; an
  /// unreadable range yields an empty view.
  SeriesView WindowView(size_t kpi, size_t db, size_t begin, size_t len,
                        std::vector<double>* scratch) const;
  /// Owned-Series variant for the measures that need Series inputs.
  Series WindowSeries(size_t kpi, size_t db, size_t begin, size_t len) const;

  const UnitData* unit_ = nullptr;
  const ColumnStore* store_ = nullptr;
  const std::vector<DbRole>* roles_ = nullptr;
  const DbcatcherConfig& config_;
  KcdCache* cache_;
  const std::vector<std::vector<uint8_t>>* validity_ = nullptr;
  size_t cache_offset_ = 0;
  /// Per-(kpi, db, window) prefix tables shared across the pairs of a KPI
  /// matrix. unordered_map references stay valid across inserts (node-based);
  /// PairScore pre-clears at the cap so two live references never dangle.
  std::unordered_map<uint64_t, KcdWindowStats> stats_;
  /// Same sharing for degraded windows: masked tables depend only on their
  /// own series and mask, so the N-1 pairs touching a series reuse one table.
  std::unordered_map<uint64_t, KcdMaskedWindowStats> masked_stats_;
  AnalyzerMetrics metrics_;
  size_t stats_built_ = 0;
  size_t stats_reused_ = 0;
};

}  // namespace dbc
