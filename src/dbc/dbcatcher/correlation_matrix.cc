#include "dbc/dbcatcher/correlation_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dbc/correlation/dtw.h"
#include "dbc/correlation/pearson.h"

namespace dbc {

namespace {
const double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

CorrelationMatrix::CorrelationMatrix(size_t n)
    : n_(n), scores_(n * n, kNan) {
  for (size_t i = 0; i < n; ++i) scores_[i * n + i] = 1.0;
}

double CorrelationMatrix::At(size_t i, size_t j) const {
  assert(i < n_ && j < n_);
  return scores_[i * n_ + j];
}

void CorrelationMatrix::Set(size_t i, size_t j, double score) {
  assert(i < n_ && j < n_);
  scores_[i * n_ + j] = score;
  scores_[j * n_ + i] = score;
}

std::vector<double> CorrelationMatrix::PeerScores(size_t j) const {
  std::vector<double> out;
  out.reserve(n_ - 1);
  for (size_t i = 0; i < n_; ++i) {
    if (i == j) continue;
    const double s = At(j, i);
    if (!std::isnan(s)) out.push_back(s);
  }
  return out;
}

uint64_t KcdCache::Key(size_t kpi, size_t a, size_t b, size_t begin,
                       size_t len) {
  if (a > b) std::swap(a, b);
  // 5 bits kpi | 8 bits a | 8 bits b | 28 bits begin | 15 bits len.
  return (static_cast<uint64_t>(kpi) << 59) | (static_cast<uint64_t>(a) << 51) |
         (static_cast<uint64_t>(b) << 43) |
         (static_cast<uint64_t>(begin & 0xFFFFFFF) << 15) |
         static_cast<uint64_t>(len & 0x7FFF);
}

bool KcdCache::Lookup(uint64_t key, double* score) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  *score = it->second;
  return true;
}

void KcdCache::Insert(uint64_t key, double score) { map_[key] = score; }

CorrelationAnalyzer::CorrelationAnalyzer(const UnitData& unit,
                                         const DbcatcherConfig& config,
                                         KcdCache* cache)
    : unit_(unit), config_(config), cache_(cache) {}

bool CorrelationAnalyzer::DbActive(size_t db, size_t begin, size_t len) const {
  const Series& rps = unit_.kpi(db, Kpi::kRequestsPerSecond);
  const size_t end = std::min(begin + len, rps.size());
  for (size_t t = begin; t < end; ++t) {
    if (rps[t] > config_.activity_epsilon) return true;
  }
  return false;
}

bool CorrelationAnalyzer::PairEligible(size_t kpi, size_t a, size_t b,
                                       size_t begin, size_t len) const {
  if (a == b) return false;
  if (KpiCorrelation(static_cast<Kpi>(kpi)) ==
      KpiCorrelationType::kReplicaOnly) {
    if (unit_.roles[a] == DbRole::kPrimary ||
        unit_.roles[b] == DbRole::kPrimary) {
      return false;
    }
  }
  return DbActive(a, begin, len) && DbActive(b, begin, len);
}

double CorrelationAnalyzer::PairScore(size_t kpi, size_t a, size_t b,
                                      size_t begin, size_t len) {
  const uint64_t key = KcdCache::Key(kpi, a, b, begin, len);
  double score = 0.0;
  if (cache_ != nullptr && cache_->Lookup(key, &score)) return score;
  const Series xa = unit_.kpis[a].row(kpi).Slice(begin, begin + len);
  const Series xb = unit_.kpis[b].row(kpi).Slice(begin, begin + len);
  switch (config_.measure) {
    case CorrelationMeasure::kKcd:
      score = KcdScore(xa, xb, config_.kcd);
      break;
    case CorrelationMeasure::kPearson:
      // Pearson is scale-free, so Eq. 1 normalization is a no-op here.
      score = PearsonCorrelation(xa, xb);
      break;
    case CorrelationMeasure::kDtw:
      score = DtwSimilarity(xa, xb, /*band=*/std::max<size_t>(3, len / 8));
      break;
  }
  if (cache_ != nullptr) cache_->Insert(key, score);
  return score;
}

CorrelationMatrix CorrelationAnalyzer::Matrix(size_t kpi, size_t begin,
                                              size_t len) {
  const size_t n = unit_.num_dbs();
  CorrelationMatrix cm(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!PairEligible(kpi, a, b, begin, len)) continue;
      cm.Set(a, b, PairScore(kpi, a, b, begin, len));
    }
  }
  return cm;
}

double CorrelationAnalyzer::AggregateScore(size_t kpi, size_t db, size_t begin,
                                           size_t len) {
  if (!DbActive(db, begin, len)) return kNan;
  if (KpiCorrelation(static_cast<Kpi>(kpi)) ==
          KpiCorrelationType::kReplicaOnly &&
      unit_.roles[db] == DbRole::kPrimary) {
    return kNan;
  }
  double best = kNan;
  const size_t n = unit_.num_dbs();
  for (size_t peer = 0; peer < n; ++peer) {
    if (!PairEligible(kpi, db, peer, begin, len)) continue;
    const double s = PairScore(kpi, db, peer, begin, len);
    if (std::isnan(best) || s > best) best = s;
  }
  return best;
}

}  // namespace dbc
