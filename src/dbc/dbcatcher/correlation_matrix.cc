#include "dbc/dbcatcher/correlation_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dbc/correlation/dtw.h"
#include "dbc/correlation/pearson.h"

namespace dbc {

namespace {
const double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

CorrelationMatrix::CorrelationMatrix(size_t n)
    : n_(n), scores_(n * n, kNan) {
  for (size_t i = 0; i < n; ++i) scores_[i * n + i] = 1.0;
}

double CorrelationMatrix::At(size_t i, size_t j) const {
  assert(i < n_ && j < n_);
  return scores_[i * n_ + j];
}

void CorrelationMatrix::Set(size_t i, size_t j, double score) {
  assert(i < n_ && j < n_);
  scores_[i * n_ + j] = score;
  scores_[j * n_ + i] = score;
}

std::vector<double> CorrelationMatrix::PeerScores(size_t j) const {
  std::vector<double> out;
  out.reserve(n_ - 1);
  for (size_t i = 0; i < n_; ++i) {
    if (i == j) continue;
    const double s = At(j, i);
    if (!std::isnan(s)) out.push_back(s);
  }
  return out;
}

uint64_t KcdCache::Key(size_t kpi, size_t a, size_t b, size_t begin,
                       size_t len) {
  if (a > b) std::swap(a, b);
  // 5 bits kpi | 8 bits a | 8 bits b | 28 bits begin | 15 bits len. Callers
  // must pre-check KeyInBounds (PairScore skips the cache otherwise): the
  // masks below make an out-of-range begin alias an early window, which
  // would serve a stale epoch's score.
  assert(KeyInBounds(kpi, a, b, begin, len));
  return (static_cast<uint64_t>(kpi) << 59) | (static_cast<uint64_t>(a) << 51) |
         (static_cast<uint64_t>(b) << 43) |
         (static_cast<uint64_t>(begin & 0xFFFFFFF) << 15) |
         static_cast<uint64_t>(len & 0x7FFF);
}

bool KcdCache::Lookup(uint64_t key, double* score) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  *score = it->second;
  return true;
}

void KcdCache::Insert(uint64_t key, double score) { map_[key] = score; }

size_t KcdCache::EvictBefore(size_t begin) {
  const uint64_t floor = static_cast<uint64_t>(begin) & 0xFFFFFFF;
  size_t evicted = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const uint64_t entry_begin = (it->first >> 15) & 0xFFFFFFF;
    if (entry_begin < floor) {
      it = map_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

CorrelationAnalyzer::CorrelationAnalyzer(const UnitData& unit,
                                         const DbcatcherConfig& config,
                                         KcdCache* cache)
    : unit_(&unit), config_(config), cache_(cache) {}

CorrelationAnalyzer::CorrelationAnalyzer(const ColumnStore& store,
                                         const std::vector<DbRole>& roles,
                                         const DbcatcherConfig& config,
                                         KcdCache* cache)
    : store_(&store), roles_(&roles), config_(config), cache_(cache) {}

SeriesView CorrelationAnalyzer::WindowView(size_t kpi, size_t db, size_t begin,
                                           size_t len,
                                           std::vector<double>* scratch) const {
  assert(store_ != nullptr);
  const size_t end = std::min(begin + len, store_->end_tick());
  if (begin >= end) return {};
  len = end - begin;
  if (begin >= store_->base_tick()) return store_->Hot(db, kpi, begin, len);
  if (!store_->Read(db, kpi, begin, len, scratch).ok()) return {};
  // Cold reads carry no mask words; ValidAt/MaskedAt answer validity
  // questions directly off the store's bitmaps.
  return {scratch->data(), scratch->size(), nullptr, 0};
}

Series CorrelationAnalyzer::WindowSeries(size_t kpi, size_t db, size_t begin,
                                         size_t len) const {
  if (store_ == nullptr) {
    return unit_->kpis[db].row(kpi).Slice(begin, begin + len);
  }
  std::vector<double> scratch;
  const SeriesView view = WindowView(kpi, db, begin, len, &scratch);
  if (view.size != 0 && view.data == scratch.data()) {
    return Series(std::move(scratch));
  }
  return Series(std::vector<double>(view.data, view.data + view.size));
}

std::vector<double> CorrelationAnalyzer::CopyWindow(size_t kpi, size_t db,
                                                    size_t begin,
                                                    size_t end) const {
  end = std::min(end, length());
  begin = std::min(std::max(begin, earliest()), end);
  if (store_ == nullptr) {
    const std::vector<double>& v = unit_->kpis[db].row(kpi).values();
    return std::vector<double>(v.begin() + static_cast<ptrdiff_t>(begin),
                               v.begin() + static_cast<ptrdiff_t>(end));
  }
  std::vector<double> scratch;
  const SeriesView view = WindowView(kpi, db, begin, end - begin, &scratch);
  return std::vector<double>(view.data, view.data + view.size);
}

bool CorrelationAnalyzer::DbActive(size_t db, size_t begin, size_t len) const {
  if (store_ != nullptr) {
    std::vector<double> scratch;
    const SeriesView rps = WindowView(KpiIndex(Kpi::kRequestsPerSecond), db,
                                      begin, len, &scratch);
    for (size_t i = 0; i < rps.size; ++i) {
      if (rps[i] > config_.activity_epsilon) return true;
    }
    return false;
  }
  const Series& rps = unit_->kpi(db, Kpi::kRequestsPerSecond);
  const size_t end = std::min(begin + len, rps.size());
  for (size_t t = begin; t < end; ++t) {
    if (rps[t] > config_.activity_epsilon) return true;
  }
  return false;
}

bool CorrelationAnalyzer::DbValid(size_t db, size_t begin, size_t len) const {
  if (len == 0) return true;
  if (store_ != nullptr) {
    const size_t end = std::min(begin + len, store_->end_tick());
    if (begin >= end) return true;  // window past the trace: nothing to veto
    const size_t good = store_->CountValid(db, begin, end - begin);
    return static_cast<double>(good) >=
           config_.min_valid_fraction * static_cast<double>(end - begin);
  }
  if (validity_ == nullptr) return true;
  if (db >= validity_->size()) return true;
  const std::vector<uint8_t>& mask = (*validity_)[db];
  const size_t end = std::min(begin + len, mask.size());
  if (begin >= end) return true;  // window past the mask: nothing to veto
  size_t good = 0;
  for (size_t t = begin; t < end; ++t) good += mask[t] != 0;
  return static_cast<double>(good) >=
         config_.min_valid_fraction * static_cast<double>(end - begin);
}

bool CorrelationAnalyzer::PairEligible(size_t kpi, size_t a, size_t b,
                                       size_t begin, size_t len) const {
  if (a == b) return false;
  if (KpiCorrelation(static_cast<Kpi>(kpi)) ==
      KpiCorrelationType::kReplicaOnly) {
    if (role(a) == DbRole::kPrimary || role(b) == DbRole::kPrimary) {
      return false;
    }
  }
  if (!DbValid(a, begin, len) || !DbValid(b, begin, len)) return false;
  return DbActive(a, begin, len) && DbActive(b, begin, len);
}

bool CorrelationAnalyzer::MaskedAt(size_t db, size_t t) const {
  if (store_ != nullptr) return !store_->ValidAt(db, t);
  if (validity_ == nullptr || db >= validity_->size()) return false;
  const std::vector<uint8_t>& mask = (*validity_)[db];
  return t < mask.size() && mask[t] == 0;
}

const KcdWindowStats& CorrelationAnalyzer::StatsFor(size_t kpi, size_t db,
                                                    size_t begin, size_t len) {
  const uint64_t key =
      KcdCache::Key(kpi, db, db, begin + cache_offset_, len);
  const auto it = stats_.find(key);
  if (it != stats_.end()) {
    ++stats_reused_;
    Inc(metrics_.stats_reused);
    return it->second;
  }
  ++stats_built_;
  Inc(metrics_.stats_built);
  if (store_ != nullptr) {
    // Hot windows build straight off the column (zero-copy stride-1 span);
    // only a cold-reaching window pays a materialization.
    std::vector<double> scratch;
    const SeriesView view = WindowView(kpi, db, begin, len, &scratch);
    return stats_
        .emplace(key, BuildKcdWindowStats(view, config_.kcd.normalize))
        .first->second;
  }
  return stats_
      .emplace(key,
               BuildKcdWindowStats(
                   unit_->kpis[db].row(kpi).Slice(begin, begin + len),
                   config_.kcd.normalize))
      .first->second;
}

const KcdMaskedWindowStats& CorrelationAnalyzer::MaskedStatsFor(size_t kpi,
                                                                size_t db,
                                                                size_t begin,
                                                                size_t len) {
  const uint64_t key = KcdCache::Key(kpi, db, db, begin + cache_offset_, len);
  const auto it = masked_stats_.find(key);
  if (it != masked_stats_.end()) {
    ++stats_reused_;
    Inc(metrics_.stats_reused);
    return it->second;
  }
  ++stats_built_;
  Inc(metrics_.stats_built);
  std::vector<double> scratch;
  SeriesView view;
  if (store_ != nullptr) {
    view = WindowView(kpi, db, begin, len, &scratch);
  } else {
    const std::vector<double>& v = unit_->kpis[db].row(kpi).values();
    const size_t end = std::min(begin + len, v.size());
    view = {v.data() + std::min(begin, end), end - std::min(begin, end),
            nullptr, 0};
  }
  std::vector<uint8_t> ok(view.size, 1);
  for (size_t i = 0; i < view.size; ++i) {
    if (MaskedAt(db, begin + i)) ok[i] = 0;
  }
  return masked_stats_
      .emplace(key, BuildKcdMaskedWindowStats(view.data, view.size,
                                              std::move(ok),
                                              config_.kcd.normalize))
      .first->second;
}

double CorrelationAnalyzer::PairScore(size_t kpi, size_t a, size_t b,
                                      size_t begin, size_t len) {
  const bool keyable =
      KcdCache::KeyInBounds(kpi, a, b, begin + cache_offset_, len);
  const uint64_t key =
      keyable ? KcdCache::Key(kpi, a, b, begin + cache_offset_, len) : 0;
  double score = 0.0;
  if (keyable && cache_ != nullptr && cache_->Lookup(key, &score)) {
    Inc(metrics_.cache_hits);
    return score;
  }

  // Degraded telemetry: imputed ticks carry no UKPIC evidence (repairs
  // cannot recover the shared fluctuation that correlates the databases), so
  // the measure must run over the fresh ticks only. KCD keeps those ticks at
  // their original time positions (masked overlaps) because its lag scan is
  // what absorbs the per-database collection delay; the lag-free comparators
  // compress to the jointly-fresh ticks instead.
  bool degraded = false;
  if (store_ != nullptr || validity_ != nullptr) {
    for (size_t t = begin; t < begin + len && !degraded; ++t) {
      degraded = MaskedAt(a, t) || MaskedAt(b, t);
    }
  }
  // The batched fast path skips the per-pair slice + normalization entirely:
  // both series' prefix tables come from the shared memo.
  if (!degraded && config_.measure == CorrelationMeasure::kKcd &&
      config_.kcd.impl == KcdImpl::kFast && keyable) {
    // Pre-clear at the cap so the two StatsFor references below can never
    // dangle (clear() between the calls would invalidate the first).
    if (stats_.size() + 2 > kStatsMemoCap) stats_.clear();
    const KcdWindowStats& sa = StatsFor(kpi, a, begin, len);
    const KcdWindowStats& sb = StatsFor(kpi, b, begin, len);
    score = KcdFastFromStats(sa, sb, config_.kcd).score;
    Inc(metrics_.kcd_fast_pairs);
    if (cache_ != nullptr) cache_->Insert(key, score);
    return score;
  }

  // Degraded KCD pairs batch just like the clean path: the masked tables
  // (values + effective mask + zero-filled moment columns) depend only on
  // their own series, so they come from a shared memo and the per-lag joint
  // moments run through the fused branch-free pass.
  if (degraded && config_.measure == CorrelationMeasure::kKcd &&
      config_.kcd.impl == KcdImpl::kFast && keyable) {
    if (masked_stats_.size() + 2 > kStatsMemoCap) masked_stats_.clear();
    const KcdMaskedWindowStats& sa = MaskedStatsFor(kpi, a, begin, len);
    const KcdMaskedWindowStats& sb = MaskedStatsFor(kpi, b, begin, len);
    score = KcdMaskedFastFromStats(sa, sb, config_.kcd).score;
    Inc(metrics_.kcd_masked_pairs);
    if (cache_ != nullptr) cache_->Insert(key, score);
    return score;
  }

  Series xa = WindowSeries(kpi, a, begin, len);
  Series xb = WindowSeries(kpi, b, begin, len);
  if (degraded && config_.measure == CorrelationMeasure::kKcd) {
    std::vector<uint8_t> oka(len, 1), okb(len, 1);
    for (size_t t = begin; t < begin + len; ++t) {
      if (MaskedAt(a, t)) oka[t - begin] = 0;
      if (MaskedAt(b, t)) okb[t - begin] = 0;
    }
    score = KcdMaskedCompute(xa, xb, &oka, &okb, config_.kcd).score;
    Inc(metrics_.kcd_masked_pairs);
    if (keyable && cache_ != nullptr) cache_->Insert(key, score);
    return score;
  }
  if (degraded) {
    std::vector<double> va, vb;
    va.reserve(len);
    vb.reserve(len);
    const size_t joint_len = std::min(xa.size(), xb.size());
    for (size_t i = 0; i < joint_len; ++i) {
      const size_t t = begin + i;
      if (MaskedAt(a, t) || MaskedAt(b, t)) continue;
      va.push_back(xa[i]);
      vb.push_back(xb[i]);
    }
    xa = Series(std::move(va));
    xb = Series(std::move(vb));
  }
  const size_t joint = xa.size();
  switch (config_.measure) {
    case CorrelationMeasure::kKcd:
      // Reached by the reference impl, or by the fast impl when the window's
      // coordinates exceed the packed-key bounds (no memoization possible).
      score = KcdCompute(xa, xb, config_.kcd).score;
      Inc(config_.kcd.impl == KcdImpl::kFast ? metrics_.kcd_fast_pairs
                                             : metrics_.kcd_reference_pairs);
      break;
    case CorrelationMeasure::kPearson:
      // Pearson is scale-free, so Eq. 1 normalization is a no-op here.
      score = PearsonCorrelation(xa, xb);
      break;
    case CorrelationMeasure::kDtw:
      score = DtwSimilarity(xa, xb, /*band=*/std::max<size_t>(3, joint / 8));
      break;
  }
  if (keyable && cache_ != nullptr) cache_->Insert(key, score);
  return score;
}

CorrelationMatrix CorrelationAnalyzer::Matrix(size_t kpi, size_t begin,
                                              size_t len) {
  const size_t n = num_dbs();
  CorrelationMatrix cm(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!PairEligible(kpi, a, b, begin, len)) continue;
      cm.Set(a, b, PairScore(kpi, a, b, begin, len));
    }
  }
  return cm;
}

double CorrelationAnalyzer::AggregateScore(size_t kpi, size_t db, size_t begin,
                                           size_t len) {
  if (!DbValid(db, begin, len)) return kNan;
  if (!DbActive(db, begin, len)) return kNan;
  if (KpiCorrelation(static_cast<Kpi>(kpi)) ==
          KpiCorrelationType::kReplicaOnly &&
      role(db) == DbRole::kPrimary) {
    return kNan;
  }
  // Minimum-peers floor: with quarantined feeds excluded, a database needs
  // at least config.min_peers usable peers for its score to mean anything.
  double best = kNan;
  size_t peers = 0;
  const size_t n = num_dbs();
  for (size_t peer = 0; peer < n; ++peer) {
    if (!PairEligible(kpi, db, peer, begin, len)) continue;
    ++peers;
    const double s = PairScore(kpi, db, peer, begin, len);
    if (std::isnan(best) || s > best) best = s;
  }
  if (peers < std::max<size_t>(1, config_.min_peers)) return kNan;
  return best;
}

}  // namespace dbc
