// Zero-copy window view over one (database, KPI) series.
//
// The columnar store (column_store.h) keeps each series as a contiguous
// struct-of-arrays hot column, so a window is just a pointer + length with
// stride 1 — exactly what the prefix-sum KCD kernel's stats builders and the
// vectorized cross-term pass want. Validity travels alongside as packed
// bitmap words: bit (mask_offset + i) of mask_words corresponds to data[i].
// A null mask means every point is valid (the clean-feed case).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dbc {

struct SeriesView {
  const double* data = nullptr;
  size_t size = 0;
  /// Packed validity bitmap; null = all valid. The view does not own the
  /// words; the store (or whatever backs the view) must outlive it.
  const uint64_t* mask_words = nullptr;
  /// Bit position of data[0] within mask_words.
  size_t mask_offset = 0;

  double operator[](size_t i) const { return data[i]; }

  bool ValidAt(size_t i) const {
    if (mask_words == nullptr) return true;
    const size_t bit = mask_offset + i;
    return (mask_words[bit >> 6] >> (bit & 63)) & 1u;
  }

  bool AllValid() const {
    if (mask_words == nullptr) return true;
    for (size_t i = 0; i < size; ++i) {
      if (!ValidAt(i)) return false;
    }
    return true;
  }
};

}  // namespace dbc
