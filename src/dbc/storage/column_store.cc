#include "dbc/storage/column_store.h"

#include <algorithm>
#include <cassert>

#include "dbc/storage/gorilla.h"

namespace dbc {

ColumnStore::ColumnStore(size_t num_dbs, size_t num_kpis,
                         size_t cold_retention_ticks)
    : num_dbs_(num_dbs),
      num_kpis_(num_kpis),
      retention_(cold_retention_ticks),
      columns_(num_dbs * num_kpis),
      valid_bits_(num_dbs),
      gated_bits_(num_dbs) {}

void ColumnStore::AppendRow(size_t db, const double* kpi_values, bool valid,
                            bool gated) {
  assert(db < num_dbs_);
  const size_t tick = end_tick();
  for (size_t k = 0; k < num_kpis_; ++k) {
    columns_[ColumnIndex(db, k)].push_back(kpi_values[k]);
  }
  const size_t bit = tick - mask_floor_;
  valid_bits_[db].Append(bit, valid);
  gated_bits_[db].Append(bit, gated);
  ++pending_rows_;
}

void ColumnStore::CommitTick() {
  assert(pending_rows_ == num_dbs_ && "every database must append once");
  pending_rows_ = 0;
  ++hot_len_;
  PublishGauges();
}

size_t ColumnStore::AddDb() {
  assert(pending_rows_ == 0 && "AddDb between ticks only");
  const size_t db = num_dbs_++;
  // Backfilled history is zero-valued, invalid, and gated: the joiner's
  // first window can only start on data it actually produced.
  for (size_t k = 0; k < num_kpis_; ++k) {
    columns_.emplace_back(hot_len_, 0.0);
  }
  const size_t span = end_tick() - mask_floor_;
  const size_t words = (span + 63) / 64;
  Bitmap valid;
  valid.words.assign(words, 0);
  Bitmap gated;
  gated.words.assign(words, ~uint64_t{0});
  if (span & 63) {
    // Bits past the current tick stay clear; they are appended later.
    gated.words.back() = (uint64_t{1} << (span & 63)) - 1;
  }
  valid_bits_.push_back(std::move(valid));
  gated_bits_.push_back(std::move(gated));
  PublishGauges();
  return db;
}

void ColumnStore::SealTo(size_t tick) {
  assert(pending_rows_ == 0 && "SealTo between ticks only");
  const size_t target = std::min(tick, end_tick());
  if (target <= base_) return;
  const size_t drop = target - base_;

  if (retention_ > 0) {
    std::vector<uint64_t> ticks(drop);
    for (size_t i = 0; i < drop; ++i) ticks[i] = base_ + i;
    ColdSegment seg;
    seg.begin = base_;
    seg.count = drop;
    seg.num_dbs = num_dbs_;
    seg.blocks.reserve(columns_.size());
    for (const std::vector<double>& column : columns_) {
      seg.blocks.push_back(GorillaCompress(ticks.data(), column.data(), drop));
      cold_bytes_ += seg.blocks.back().size();
      ++segments_sealed_;
      Inc(metrics_.segments_sealed);
    }
    cold_.push_back(std::move(seg));
  }
  for (std::vector<double>& column : columns_) {
    column.erase(column.begin(), column.begin() + static_cast<ptrdiff_t>(drop));
  }
  base_ = target;
  hot_len_ -= drop;

  // Age out segments wholly behind the retention horizon.
  const size_t floor = base_ > retention_ ? base_ - retention_ : 0;
  bool dropped_cold = false;
  while (!cold_.empty() &&
         cold_.front().begin + cold_.front().count <= floor) {
    for (const std::vector<uint8_t>& block : cold_.front().blocks) {
      cold_bytes_ -= block.size();
    }
    cold_.pop_front();
    dropped_cold = true;
  }
  if (dropped_cold) {
    decode_cache_.clear();
    decode_fifo_.clear();
  }

  // Bitmaps shed whole words once no retained tick needs them.
  const size_t new_floor = retained_from();
  const size_t word_advance = (new_floor - mask_floor_) / 64;
  if (word_advance > 0) {
    for (size_t db = 0; db < num_dbs_; ++db) {
      auto drop_words = [&](Bitmap& bits) {
        const size_t n = std::min(word_advance, bits.words.size());
        bits.words.erase(bits.words.begin(),
                         bits.words.begin() + static_cast<ptrdiff_t>(n));
      };
      drop_words(valid_bits_[db]);
      drop_words(gated_bits_[db]);
    }
    mask_floor_ += word_advance * 64;
  }
  PublishGauges();
}

SeriesView ColumnStore::Hot(size_t db, size_t kpi, size_t begin,
                            size_t len) const {
  assert(db < num_dbs_ && kpi < num_kpis_);
  assert(begin >= base_ && begin + len <= end_tick() && "window not hot");
  SeriesView view;
  view.data = columns_[ColumnIndex(db, kpi)].data() + (begin - base_);
  view.size = len;
  view.mask_words = valid_bits_[db].words.data();
  view.mask_offset = begin - mask_floor_;
  return view;
}

const std::vector<double>* ColumnStore::DecodeColumn(const ColdSegment& seg,
                                                     size_t db, size_t kpi,
                                                     Status* status) const {
  const uint64_t key =
      (static_cast<uint64_t>(seg.begin) << 32) | ColumnIndex(db, kpi);
  const auto it = decode_cache_.find(key);
  if (it != decode_cache_.end()) return &it->second;

  std::vector<double> values;
  const std::vector<uint8_t>& block = seg.blocks[ColumnIndex(db, kpi)];
  *status = GorillaDecompress(block.data(), block.size(), nullptr, &values);
  if (status->ok() && values.size() != seg.count) {
    *status = Status::IoError("cold segment decoded to wrong length");
  }
  if (!status->ok()) return nullptr;
  ++decompress_hits_;
  Inc(metrics_.decompress_hits);
  if (decode_cache_.size() >= kDecodeCacheCap && !decode_fifo_.empty()) {
    decode_cache_.erase(decode_fifo_.front());
    decode_fifo_.pop_front();
  }
  decode_fifo_.push_back(key);
  return &decode_cache_.emplace(key, std::move(values)).first->second;
}

Status ColumnStore::Read(size_t db, size_t kpi, size_t begin, size_t len,
                         std::vector<double>* out) const {
  if (db >= num_dbs_ || kpi >= num_kpis_) {
    return Status::InvalidArgument("unknown column");
  }
  out->clear();
  if (len == 0) return Status::Ok();
  const size_t end = begin + len;
  if (begin < retained_from() || end > end_tick()) {
    return Status::OutOfRange("range not retained");
  }
  out->reserve(len);
  // Cold part first (segments are ordered and contiguous), then hot.
  for (const ColdSegment& seg : cold_) {
    const size_t lo = std::max(begin, seg.begin);
    const size_t hi = std::min(end, seg.begin + seg.count);
    if (lo >= hi) continue;
    if (db >= seg.num_dbs) {
      // The database joined after this span was sealed: backfilled zeros,
      // same as AddDb backfills the hot tier.
      out->insert(out->end(), hi - lo, 0.0);
      continue;
    }
    Status status = Status::Ok();
    const std::vector<double>* values = DecodeColumn(seg, db, kpi, &status);
    if (!status.ok()) return status;
    out->insert(out->end(), values->begin() + (lo - seg.begin),
                values->begin() + (hi - seg.begin));
  }
  if (end > base_) {
    const size_t lo = std::max(begin, base_);
    const std::vector<double>& column = columns_[ColumnIndex(db, kpi)];
    out->insert(out->end(), column.begin() + (lo - base_),
                column.begin() + (end - base_));
  }
  return Status::Ok();
}

bool ColumnStore::ValidAt(size_t db, size_t tick) const {
  // Outside the retained bit span nothing can veto: mirrors the legacy
  // vector masks, where an index past the mask was "not masked".
  if (tick < mask_floor_ || tick >= end_tick()) return true;
  return valid_bits_[db].Get(tick - mask_floor_);
}

bool ColumnStore::GatedAt(size_t db, size_t tick) const {
  if (tick < mask_floor_ || tick >= end_tick()) return false;
  return gated_bits_[db].Get(tick - mask_floor_);
}

size_t ColumnStore::CountValid(size_t db, size_t begin, size_t len) const {
  const size_t end = std::min(begin + len, end_tick());
  size_t count = 0;
  for (size_t t = begin; t < end; ++t) {
    count += ValidAt(db, t) ? 1 : 0;
  }
  return count;
}

size_t ColumnStore::hot_bytes() const {
  size_t bytes = 0;
  for (const std::vector<double>& column : columns_) {
    bytes += column.size() * sizeof(double);
  }
  for (size_t db = 0; db < num_dbs_; ++db) {
    bytes += (valid_bits_[db].words.size() + gated_bits_[db].words.size()) *
             sizeof(uint64_t);
  }
  return bytes;
}

void ColumnStore::set_metrics(const StoreMetrics& metrics) {
  metrics_ = metrics;
  PublishGauges();
}

void ColumnStore::PublishGauges() const {
  Set(metrics_.hot_bytes, static_cast<double>(hot_bytes()));
  Set(metrics_.cold_bytes, static_cast<double>(cold_bytes_));
}

}  // namespace dbc
