#include "dbc/storage/column_store.h"

#include <algorithm>
#include <cassert>

#include "dbc/storage/gorilla.h"

namespace dbc {

ColumnStore::ColumnStore(size_t num_dbs, size_t num_kpis,
                         size_t cold_retention_ticks)
    : num_dbs_(num_dbs),
      num_kpis_(num_kpis),
      retention_(cold_retention_ticks),
      columns_(num_dbs * num_kpis),
      valid_bits_(num_dbs),
      gated_bits_(num_dbs) {}

void ColumnStore::AppendRow(size_t db, const double* kpi_values, bool valid,
                            bool gated) {
  assert(db < num_dbs_);
  const size_t tick = end_tick();
  for (size_t k = 0; k < num_kpis_; ++k) {
    columns_[ColumnIndex(db, k)].push_back(kpi_values[k]);
  }
  const size_t bit = tick - mask_floor_;
  valid_bits_[db].Append(bit, valid);
  gated_bits_[db].Append(bit, gated);
  ++pending_rows_;
}

void ColumnStore::CommitTick() {
  assert(pending_rows_ == num_dbs_ && "every database must append once");
  pending_rows_ = 0;
  ++hot_len_;
  PublishGauges();
}

size_t ColumnStore::AddDb() {
  assert(pending_rows_ == 0 && "AddDb between ticks only");
  const size_t db = num_dbs_++;
  // Backfilled history is zero-valued, invalid, and gated: the joiner's
  // first window can only start on data it actually produced.
  for (size_t k = 0; k < num_kpis_; ++k) {
    columns_.emplace_back(hot_len_, 0.0);
  }
  const size_t span = end_tick() - mask_floor_;
  const size_t words = (span + 63) / 64;
  Bitmap valid;
  valid.words.assign(words, 0);
  Bitmap gated;
  gated.words.assign(words, ~uint64_t{0});
  if (span & 63) {
    // Bits past the current tick stay clear; they are appended later.
    gated.words.back() = (uint64_t{1} << (span & 63)) - 1;
  }
  valid_bits_.push_back(std::move(valid));
  gated_bits_.push_back(std::move(gated));
  PublishGauges();
  return db;
}

void ColumnStore::SealTo(size_t tick) {
  assert(pending_rows_ == 0 && "SealTo between ticks only");
  const size_t target = std::min(tick, end_tick());
  if (target <= base_) return;
  const size_t drop = target - base_;

  if (retention_ > 0) {
    std::vector<uint64_t> ticks(drop);
    for (size_t i = 0; i < drop; ++i) ticks[i] = base_ + i;
    ColdSegment seg;
    seg.begin = base_;
    seg.count = drop;
    seg.num_dbs = num_dbs_;
    seg.blocks.reserve(columns_.size());
    for (const std::vector<double>& column : columns_) {
      seg.blocks.push_back(GorillaCompress(ticks.data(), column.data(), drop));
      cold_bytes_ += seg.blocks.back().size();
      ++segments_sealed_;
      Inc(metrics_.segments_sealed);
    }
    cold_.push_back(std::move(seg));
  }
  for (std::vector<double>& column : columns_) {
    column.erase(column.begin(), column.begin() + static_cast<ptrdiff_t>(drop));
  }
  base_ = target;
  hot_len_ -= drop;

  // Age out segments wholly behind the retention horizon.
  const size_t floor = base_ > retention_ ? base_ - retention_ : 0;
  bool dropped_cold = false;
  while (!cold_.empty() &&
         cold_.front().begin + cold_.front().count <= floor) {
    for (const std::vector<uint8_t>& block : cold_.front().blocks) {
      cold_bytes_ -= block.size();
    }
    cold_.pop_front();
    dropped_cold = true;
  }
  if (dropped_cold) {
    decode_cache_.clear();
    decode_fifo_.clear();
  }

  // Bitmaps shed whole words once no retained tick needs them.
  const size_t new_floor = retained_from();
  const size_t word_advance = (new_floor - mask_floor_) / 64;
  if (word_advance > 0) {
    for (size_t db = 0; db < num_dbs_; ++db) {
      auto drop_words = [&](Bitmap& bits) {
        const size_t n = std::min(word_advance, bits.words.size());
        bits.words.erase(bits.words.begin(),
                         bits.words.begin() + static_cast<ptrdiff_t>(n));
      };
      drop_words(valid_bits_[db]);
      drop_words(gated_bits_[db]);
    }
    mask_floor_ += word_advance * 64;
  }
  PublishGauges();
}

SeriesView ColumnStore::Hot(size_t db, size_t kpi, size_t begin,
                            size_t len) const {
  assert(db < num_dbs_ && kpi < num_kpis_);
  assert(begin >= base_ && begin + len <= end_tick() && "window not hot");
  SeriesView view;
  view.data = columns_[ColumnIndex(db, kpi)].data() + (begin - base_);
  view.size = len;
  view.mask_words = valid_bits_[db].words.data();
  view.mask_offset = begin - mask_floor_;
  return view;
}

const std::vector<double>* ColumnStore::DecodeColumn(const ColdSegment& seg,
                                                     size_t db, size_t kpi,
                                                     Status* status) const {
  const uint64_t key =
      (static_cast<uint64_t>(seg.begin) << 32) | ColumnIndex(db, kpi);
  const auto it = decode_cache_.find(key);
  if (it != decode_cache_.end()) return &it->second;

  std::vector<double> values;
  const std::vector<uint8_t>& block = seg.blocks[ColumnIndex(db, kpi)];
  *status = GorillaDecompress(block.data(), block.size(), nullptr, &values);
  if (status->ok() && values.size() != seg.count) {
    *status = Status::IoError("cold segment decoded to wrong length");
  }
  if (!status->ok()) return nullptr;
  ++decompress_hits_;
  Inc(metrics_.decompress_hits);
  if (decode_cache_.size() >= kDecodeCacheCap && !decode_fifo_.empty()) {
    decode_cache_.erase(decode_fifo_.front());
    decode_fifo_.pop_front();
  }
  decode_fifo_.push_back(key);
  return &decode_cache_.emplace(key, std::move(values)).first->second;
}

Status ColumnStore::Read(size_t db, size_t kpi, size_t begin, size_t len,
                         std::vector<double>* out) const {
  if (db >= num_dbs_ || kpi >= num_kpis_) {
    return Status::InvalidArgument("unknown column");
  }
  out->clear();
  if (len == 0) return Status::Ok();
  const size_t end = begin + len;
  if (begin < retained_from() || end > end_tick()) {
    return Status::OutOfRange("range not retained");
  }
  out->reserve(len);
  // Cold part first (segments are ordered and contiguous), then hot.
  for (const ColdSegment& seg : cold_) {
    const size_t lo = std::max(begin, seg.begin);
    const size_t hi = std::min(end, seg.begin + seg.count);
    if (lo >= hi) continue;
    if (db >= seg.num_dbs) {
      // The database joined after this span was sealed: backfilled zeros,
      // same as AddDb backfills the hot tier.
      out->insert(out->end(), hi - lo, 0.0);
      continue;
    }
    Status status = Status::Ok();
    const std::vector<double>* values = DecodeColumn(seg, db, kpi, &status);
    if (!status.ok()) return status;
    out->insert(out->end(), values->begin() + (lo - seg.begin),
                values->begin() + (hi - seg.begin));
  }
  if (end > base_) {
    const size_t lo = std::max(begin, base_);
    const std::vector<double>& column = columns_[ColumnIndex(db, kpi)];
    out->insert(out->end(), column.begin() + (lo - base_),
                column.begin() + (end - base_));
  }
  return Status::Ok();
}

bool ColumnStore::ValidAt(size_t db, size_t tick) const {
  // Outside the retained bit span nothing can veto: mirrors the legacy
  // vector masks, where an index past the mask was "not masked".
  if (tick < mask_floor_ || tick >= end_tick()) return true;
  return valid_bits_[db].Get(tick - mask_floor_);
}

bool ColumnStore::GatedAt(size_t db, size_t tick) const {
  if (tick < mask_floor_ || tick >= end_tick()) return false;
  return gated_bits_[db].Get(tick - mask_floor_);
}

size_t ColumnStore::CountValid(size_t db, size_t begin, size_t len) const {
  const size_t end = std::min(begin + len, end_tick());
  size_t count = 0;
  for (size_t t = begin; t < end; ++t) {
    count += ValidAt(db, t) ? 1 : 0;
  }
  return count;
}

size_t ColumnStore::hot_bytes() const {
  size_t bytes = 0;
  for (const std::vector<double>& column : columns_) {
    bytes += column.size() * sizeof(double);
  }
  for (size_t db = 0; db < num_dbs_; ++db) {
    bytes += (valid_bits_[db].words.size() + gated_bits_[db].words.size()) *
             sizeof(uint64_t);
  }
  return bytes;
}

void ColumnStore::SaveState(BinWriter& out) const {
  assert(pending_rows_ == 0 && "checkpoint between ticks only");
  out.WriteU64(num_dbs_);
  out.WriteU64(num_kpis_);
  out.WriteU64(retention_);
  out.WriteU64(base_);
  out.WriteU64(hot_len_);
  out.WriteU64(mask_floor_);
  out.WriteU64(segments_sealed_);
  // Hot columns ride the same self-validating block codec as the cold tier;
  // the checkpoint inherits its bit-exactness and per-block CRC for free.
  std::vector<uint64_t> ticks(hot_len_);
  for (size_t i = 0; i < hot_len_; ++i) ticks[i] = base_ + i;
  for (const std::vector<double>& column : columns_) {
    out.WriteByteVector(GorillaCompress(ticks.data(), column.data(), hot_len_));
  }
  for (size_t db = 0; db < num_dbs_; ++db) {
    out.WriteU64Vector(valid_bits_[db].words);
    out.WriteU64Vector(gated_bits_[db].words);
  }
  out.WriteU64(cold_.size());
  for (const ColdSegment& seg : cold_) {
    out.WriteU64(seg.begin);
    out.WriteU64(seg.count);
    out.WriteU64(seg.num_dbs);
    out.WriteU64(seg.blocks.size());
    for (const std::vector<uint8_t>& block : seg.blocks) {
      out.WriteByteVector(block);
    }
  }
}

Status ColumnStore::LoadState(BinReader& in) {
  const size_t num_dbs = in.ReadU64();
  const size_t num_kpis = in.ReadU64();
  const size_t retention = in.ReadU64();
  const size_t base = in.ReadU64();
  const size_t hot_len = in.ReadU64();
  const size_t mask_floor = in.ReadU64();
  const size_t segments_sealed = in.ReadU64();
  if (in.failed()) return in.status();
  // Each hot column costs at least one block header below; cap the counts
  // against the remaining bytes so a corrupt image cannot drive a giant
  // allocation before its first block read fails.
  if (num_kpis == 0 || num_dbs > in.remaining() ||
      num_kpis > in.remaining() || mask_floor > base) {
    return Status::IoError("column store image has implausible shape");
  }

  std::vector<std::vector<double>> columns(num_dbs * num_kpis);
  std::vector<uint8_t> block;
  for (auto& column : columns) {
    if (!in.ReadBytes(&block)) return in.status();
    const Status decoded =
        GorillaDecompress(block.data(), block.size(), nullptr, &column);
    if (!decoded.ok()) return decoded;
    if (column.size() != hot_len) {
      return Status::IoError("hot column decoded to wrong length");
    }
  }
  std::vector<Bitmap> valid_bits(num_dbs);
  std::vector<Bitmap> gated_bits(num_dbs);
  for (size_t db = 0; db < num_dbs; ++db) {
    if (!in.ReadU64Vector(&valid_bits[db].words) ||
        !in.ReadU64Vector(&gated_bits[db].words)) {
      return in.status();
    }
  }
  size_t cold_count = 0;
  if (!in.ReadCount(8, &cold_count)) return in.status();
  std::deque<ColdSegment> cold;
  size_t cold_bytes = 0;
  for (size_t i = 0; i < cold_count; ++i) {
    ColdSegment seg;
    seg.begin = in.ReadU64();
    seg.count = in.ReadU64();
    seg.num_dbs = in.ReadU64();
    size_t blocks = 0;
    if (!in.ReadCount(8, &blocks)) return in.status();
    seg.blocks.resize(blocks);
    for (auto& seg_block : seg.blocks) {
      if (!in.ReadBytes(&seg_block)) return in.status();
      cold_bytes += seg_block.size();
    }
    cold.push_back(std::move(seg));
  }
  if (in.failed()) return in.status();

  num_dbs_ = num_dbs;
  num_kpis_ = num_kpis;
  retention_ = retention;
  base_ = base;
  hot_len_ = hot_len;
  mask_floor_ = mask_floor;
  segments_sealed_ = segments_sealed;
  pending_rows_ = 0;
  columns_ = std::move(columns);
  valid_bits_ = std::move(valid_bits);
  gated_bits_ = std::move(gated_bits);
  cold_ = std::move(cold);
  cold_bytes_ = cold_bytes;
  decompress_hits_ = 0;
  decode_cache_.clear();
  decode_fifo_.clear();
  PublishGauges();
  return Status::Ok();
}

void ColumnStore::set_metrics(const StoreMetrics& metrics) {
  metrics_ = metrics;
  PublishGauges();
}

void ColumnStore::PublishGauges() const {
  Set(metrics_.hot_bytes, static_cast<double>(hot_bytes()));
  Set(metrics_.cold_bytes, static_cast<double>(cold_bytes_));
}

}  // namespace dbc
