#include "dbc/storage/gorilla.h"

#include <array>
#include <bit>
#include <cassert>

namespace dbc {

namespace {

/// Double-delta bucket boundaries (Gorilla §4.1.1, one extra wide bucket so
/// arbitrary tick jumps still encode losslessly).
constexpr int64_t kDod7 = 63;     // '10'   + 7 bits, dod in [-63, 64]
constexpr int64_t kDod9 = 255;    // '110'  + 9 bits, dod in [-255, 256]
constexpr int64_t kDod12 = 2047;  // '1110' + 12 bits, dod in [-2047, 2048]

uint32_t CrcTableAt(size_t i) {
  static const auto kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[n] = c;
    }
    return table;
  }();
  return kTable[i];
}

void PutLe32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t GorillaCrc32(const uint8_t* data, size_t size) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = CrcTableAt((crc ^ data[i]) & 0xFF) ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BitWriter::WriteBits(uint64_t value, unsigned bits) {
  assert(bits <= 64);
  while (bits > 0) {
    if (bit_fill_ == 0) bytes_.push_back(0);
    const unsigned free_bits = 8 - bit_fill_;
    const unsigned take = free_bits < bits ? free_bits : bits;
    const uint64_t chunk =
        (value >> (bits - take)) & ((uint64_t{1} << take) - 1);
    bytes_.back() |= static_cast<uint8_t>(chunk << (free_bits - take));
    bit_fill_ = (bit_fill_ + take) & 7;
    bits -= take;
  }
}

uint64_t BitReader::ReadBits(unsigned bits) {
  assert(bits <= 64);
  if (failed_ || pos_ + bits > size_bits_) {
    failed_ = true;
    return 0;
  }
  uint64_t out = 0;
  unsigned remaining = bits;
  while (remaining > 0) {
    const uint8_t byte = data_[pos_ >> 3];
    const unsigned avail = 8 - (pos_ & 7);
    const unsigned take = avail < remaining ? avail : remaining;
    const uint64_t chunk =
        (byte >> (avail - take)) & ((uint64_t{1} << take) - 1);
    out = (out << take) | chunk;
    pos_ += take;
    remaining -= take;
  }
  return out;
}

std::vector<uint8_t> GorillaCompress(const uint64_t* ticks,
                                     const double* values, size_t n) {
  BitWriter w;
  if (n > 0) {
    w.WriteBits(ticks[0], 64);
    w.WriteBits(std::bit_cast<uint64_t>(values[0]), 64);
    // prev_delta starts at 1 so a dense cadence (the store's sealed hot
    // prefixes) encodes its very first delta as the single '0' bit too.
    uint64_t prev_tick = ticks[0];
    int64_t prev_delta = 1;
    uint64_t prev_bits = std::bit_cast<uint64_t>(values[0]);
    unsigned win_lz = 0, win_tz = 0;
    bool have_window = false;
    for (size_t i = 1; i < n; ++i) {
      assert(ticks[i] > prev_tick && "ticks must be strictly increasing");
      const int64_t delta = static_cast<int64_t>(ticks[i] - prev_tick);
      const int64_t dod = delta - prev_delta;
      if (dod == 0) {
        w.WriteBit(0);
      } else if (dod >= -kDod7 && dod <= kDod7 + 1) {
        w.WriteBits(0b10, 2);
        w.WriteBits(static_cast<uint64_t>(dod + kDod7), 7);
      } else if (dod >= -kDod9 && dod <= kDod9 + 1) {
        w.WriteBits(0b110, 3);
        w.WriteBits(static_cast<uint64_t>(dod + kDod9), 9);
      } else if (dod >= -kDod12 && dod <= kDod12 + 1) {
        w.WriteBits(0b1110, 4);
        w.WriteBits(static_cast<uint64_t>(dod + kDod12), 12);
      } else {
        w.WriteBits(0b1111, 4);
        w.WriteBits(static_cast<uint64_t>(delta), 64);
      }
      prev_delta = delta;
      prev_tick = ticks[i];

      const uint64_t bits = std::bit_cast<uint64_t>(values[i]);
      const uint64_t x = bits ^ prev_bits;
      prev_bits = bits;
      if (x == 0) {
        w.WriteBit(0);
        continue;
      }
      w.WriteBit(1);
      unsigned lz = static_cast<unsigned>(std::countl_zero(x));
      const unsigned tz = static_cast<unsigned>(std::countr_zero(x));
      if (lz > 31) lz = 31;  // 5-bit field; a wider window still round-trips
      if (have_window && lz >= win_lz && tz >= win_tz) {
        // The meaningful bits fit the previous window: reuse it.
        w.WriteBit(0);
        w.WriteBits(x >> win_tz, 64 - win_lz - win_tz);
      } else {
        const unsigned meaningful = 64 - lz - tz;
        w.WriteBit(1);
        w.WriteBits(lz, 5);
        w.WriteBits(meaningful - 1, 6);
        w.WriteBits(x >> tz, meaningful);
        win_lz = lz;
        win_tz = tz;
        have_window = true;
      }
    }
  }

  std::vector<uint8_t> out;
  out.reserve(8 + w.bytes().size());
  PutLe32(out, static_cast<uint32_t>(n));
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  PutLe32(out, GorillaCrc32(out.data(), out.size()));
  return out;
}

Status GorillaDecompress(const uint8_t* data, size_t size,
                         std::vector<uint64_t>* ticks,
                         std::vector<double>* values) {
  if (size < 8) return Status::IoError("gorilla block truncated");
  const uint32_t stored_crc = GetLe32(data + size - 4);
  if (GorillaCrc32(data, size - 4) != stored_crc) {
    return Status::IoError("gorilla block crc mismatch");
  }
  const size_t n = GetLe32(data);
  if (ticks != nullptr) {
    ticks->clear();
    ticks->reserve(n);
  }
  if (values != nullptr) {
    values->clear();
    values->reserve(n);
  }
  if (n == 0) return Status::Ok();

  BitReader r(data + 4, size - 8);
  uint64_t tick = r.ReadBits(64);
  uint64_t bits = r.ReadBits(64);
  int64_t prev_delta = 1;
  unsigned win_lz = 0, win_tz = 0;
  auto emit = [&] {
    if (ticks != nullptr) ticks->push_back(tick);
    if (values != nullptr) values->push_back(std::bit_cast<double>(bits));
  };
  emit();
  for (size_t i = 1; i < n; ++i) {
    int64_t delta;
    if (r.ReadBit() == 0) {
      delta = prev_delta;
    } else if (r.ReadBit() == 0) {
      delta = prev_delta + static_cast<int64_t>(r.ReadBits(7)) - kDod7;
    } else if (r.ReadBit() == 0) {
      delta = prev_delta + static_cast<int64_t>(r.ReadBits(9)) - kDod9;
    } else if (r.ReadBit() == 0) {
      delta = prev_delta + static_cast<int64_t>(r.ReadBits(12)) - kDod12;
    } else {
      delta = static_cast<int64_t>(r.ReadBits(64));
    }
    if (r.failed() || delta <= 0) {
      return Status::IoError("gorilla timestamp stream malformed");
    }
    tick += static_cast<uint64_t>(delta);
    prev_delta = delta;

    if (r.ReadBit() != 0) {
      if (r.ReadBit() == 0) {
        bits ^= r.ReadBits(64 - win_lz - win_tz) << win_tz;
      } else {
        win_lz = static_cast<unsigned>(r.ReadBits(5));
        const unsigned meaningful = static_cast<unsigned>(r.ReadBits(6)) + 1;
        if (win_lz + meaningful > 64) {
          return Status::IoError("gorilla value stream malformed");
        }
        win_tz = 64 - win_lz - meaningful;
        bits ^= r.ReadBits(meaningful) << win_tz;
      }
    }
    if (r.failed()) return Status::IoError("gorilla block truncated");
    emit();
  }
  return Status::Ok();
}

}  // namespace dbc
