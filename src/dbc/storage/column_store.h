// Columnar struct-of-arrays telemetry store with a compressed cold tier.
//
// Layout (DESIGN.md §12). Each (database, KPI) series lives in its own
// contiguous hot column covering absolute ticks [base_tick, end_tick); per
// database, packed validity and warm-up-gate bitmaps run alongside (2 bits
// per retained db-tick, shared by hot and cold). SealTo() compresses the hot
// prefix of every column into one Gorilla block (gorilla.h) and advances
// base_tick — with cold retention enabled the sealed segments stay readable
// behind the hot window until they age past the retention horizon; with
// retention 0 (the default) sealing degenerates to the pre-columnar trim.
//
// Hot() hands the KCD kernels a zero-copy stride-1 SeriesView straight off
// the column (plus the bitmap words); Read() reassembles any retained range,
// inflating cold segments through a small decode cache. Decompression is
// bit-exact (u64 pattern), so a replay through the cold tier scores
// identically to one that never left the hot tier.
//
// Not thread-safe: one store belongs to one unit pipeline (share-nothing),
// like every other per-unit structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dbc/common/binio.h"
#include "dbc/common/status.h"
#include "dbc/obs/metrics.h"
#include "dbc/storage/series_view.h"

namespace dbc {

/// Observability hooks (null = off; dbc_store_* metrics). Pure outputs —
/// the store never reads them back, so obs on/off is behavior-identical.
struct StoreMetrics {
  Gauge* hot_bytes = nullptr;        // resident hot columns + bitmap words
  Gauge* cold_bytes = nullptr;       // resident compressed segments
  Counter* segments_sealed = nullptr;   // per-column Gorilla blocks written
  Counter* decompress_hits = nullptr;   // cold reads that inflated a block
};

class ColumnStore {
 public:
  /// `cold_retention_ticks`: how far behind base_tick sealed data stays
  /// readable (rounded up to whole segments). 0 = no cold tier.
  ColumnStore(size_t num_dbs, size_t num_kpis, size_t cold_retention_ticks = 0);

  size_t num_dbs() const { return num_dbs_; }
  size_t num_kpis() const { return num_kpis_; }

  /// First hot tick. Columns hold [base_tick(), end_tick()).
  size_t base_tick() const { return base_; }
  /// One past the newest committed tick.
  size_t end_tick() const { return base_ + hot_len_; }
  size_t hot_ticks() const { return hot_len_; }
  /// Oldest tick still readable (cold floor; == base_tick() without a cold
  /// tier).
  size_t retained_from() const {
    return cold_.empty() ? base_ : cold_.front().begin;
  }

  /// Appends tick end_tick() for one database; every database must be
  /// appended exactly once per tick, then CommitTick() advances the clock.
  void AppendRow(size_t db, const double* kpi_values, bool valid, bool gated);
  void CommitTick();

  /// Registers a database joining mid-stream. Its hot history is backfilled
  /// with zeros, invalid + gated (same contract as the stream's AddDb); it
  /// has no cold history. Returns the new id.
  size_t AddDb();

  /// Seals hot ticks [base_tick(), min(tick, end_tick())) into compressed
  /// cold segments (or discards them when the cold tier is off) and drops
  /// cold segments wholly behind the retention horizon.
  void SealTo(size_t tick);

  /// Zero-copy view of [begin, begin + len), which must lie entirely within
  /// the hot tier. Mask words cover validity; invalidated on the next
  /// CommitTick/SealTo/AddDb.
  SeriesView Hot(size_t db, size_t kpi, size_t begin, size_t len) const;

  /// Copies [begin, begin + len) into `out`, inflating cold segments as
  /// needed (bit-exact). Fails with kOutOfRange when the range is not fully
  /// retained and kIoError on a corrupt segment.
  Status Read(size_t db, size_t kpi, size_t begin, size_t len,
              std::vector<double>* out) const;

  /// Validity of (db, tick). Ticks outside the retained range count as valid
  /// — mirroring the legacy mask semantics where indices past the mask never
  /// veto a window.
  bool ValidAt(size_t db, size_t tick) const;
  /// Warm-up/quarantine gate of (db, tick); false outside the retained range.
  bool GatedAt(size_t db, size_t tick) const;
  /// Number of valid ticks in [begin, begin + min(len, end_tick() - begin)).
  size_t CountValid(size_t db, size_t begin, size_t len) const;

  /// Resident footprint: hot column values + bitmap words.
  size_t hot_bytes() const;
  /// Resident footprint of the compressed cold tier.
  size_t cold_bytes() const { return cold_bytes_; }
  size_t segments_sealed() const { return segments_sealed_; }
  size_t decompress_hits() const { return decompress_hits_; }

  /// Installs observability gauges/counters (copied; nulls stay no-ops).
  void set_metrics(const StoreMetrics& metrics);

  /// Serializes the whole store for a durable checkpoint: hot columns are
  /// written as Gorilla blocks (the same CRC-framed codec the cold tier
  /// uses), bitmaps as raw words, cold segments byte-for-byte. Must be
  /// called between ticks (no pending AppendRow).
  void SaveState(BinWriter& out) const;

  /// Restores a SaveState() image, replacing every field. Decompression is
  /// bit-exact, so a recovered store reads identically to the original.
  /// Returns kIoError on a truncated / corrupt image (the caller's CRC
  /// check should already have rejected it — this is defense in depth).
  Status LoadState(BinReader& in);

 private:
  /// One sealed span: all columns that existed at seal time, one Gorilla
  /// block each. Databases added later read as zeros inside it.
  struct ColdSegment {
    size_t begin = 0;
    size_t count = 0;
    size_t num_dbs = 0;
    std::vector<std::vector<uint8_t>> blocks;  // [db * num_kpis + kpi]
  };

  /// Packed per-db bitmap over absolute ticks [floor_, ...); the floor only
  /// advances by whole words (when cold data ages out), keeping bit offsets
  /// cheap.
  struct Bitmap {
    std::vector<uint64_t> words;
    bool Get(size_t bit) const {
      return (words[bit >> 6] >> (bit & 63)) & 1u;
    }
    void Append(size_t bit, bool value) {
      const size_t word = bit >> 6;
      if (word >= words.size()) words.resize(word + 1, 0);
      if (value) words[word] |= uint64_t{1} << (bit & 63);
    }
  };

  size_t ColumnIndex(size_t db, size_t kpi) const {
    return db * num_kpis_ + kpi;
  }
  void PublishGauges() const;
  /// The decoded values of one cold segment's column (decode cache).
  const std::vector<double>* DecodeColumn(const ColdSegment& seg, size_t db,
                                          size_t kpi, Status* status) const;

  size_t num_dbs_;
  size_t num_kpis_;
  size_t retention_;
  size_t base_ = 0;
  size_t hot_len_ = 0;
  size_t pending_rows_ = 0;  // AppendRow calls since the last CommitTick
  /// Hot columns, [db * num_kpis + kpi][t - base_].
  std::vector<std::vector<double>> columns_;
  /// Per-db validity / gate bitmaps over ticks [mask_floor_, end_tick()).
  std::vector<Bitmap> valid_bits_;
  std::vector<Bitmap> gated_bits_;
  size_t mask_floor_ = 0;
  std::deque<ColdSegment> cold_;
  size_t cold_bytes_ = 0;
  size_t segments_sealed_ = 0;
  mutable size_t decompress_hits_ = 0;

  /// FIFO decode cache: cold windows are re-read across pairs/genomes (the
  /// Relearn replay), so a handful of inflated segments amortize the
  /// decompression. Capped; not counted in cold_bytes().
  static constexpr size_t kDecodeCacheCap = 16;
  mutable std::unordered_map<uint64_t, std::vector<double>> decode_cache_;
  mutable std::deque<uint64_t> decode_fifo_;

  StoreMetrics metrics_;
};

}  // namespace dbc
