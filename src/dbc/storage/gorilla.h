// Gorilla-style block codec for sealed cold segments (Facebook's in-memory
// TSDB, VLDB'15): timestamps as double-delta with variable-width windows,
// values as XOR against the previous value with reused leading/trailing-zero
// windows. Values round-trip bit-exactly for every f64 payload — NaN payload
// bits, infinities, -0.0, denormals — because the codec only ever touches the
// raw u64 bit pattern (same guarantee the wire codec in dbc/net makes).
//
// Block layout: [u32 LE point count][bitstream][u32 LE CRC32 over everything
// before it]. Any single-bit corruption anywhere in the block — count,
// stream, or the CRC field itself — is rejected with kIoError rather than
// decoded into silently wrong telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbc/common/status.h"

namespace dbc {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `size` bytes.
uint32_t GorillaCrc32(const uint8_t* data, size_t size);

/// MSB-first bit appender backing the compressor.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value`, most significant first.
  void WriteBits(uint64_t value, unsigned bits);
  void WriteBit(uint32_t bit) { WriteBits(bit, 1); }

  /// The byte buffer, zero-padded to a byte boundary.
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  unsigned bit_fill_ = 0;  // bits used in the last byte (0 = byte-aligned)
};

/// MSB-first bit reader; overruns latch failed() instead of over-reading.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}

  /// Next `bits` bits as the low bits of the result; 0 once failed.
  uint64_t ReadBits(unsigned bits);
  uint32_t ReadBit() { return static_cast<uint32_t>(ReadBits(1)); }

  bool failed() const { return failed_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Compresses n (tick, value) points into one self-validating block. Ticks
/// must be strictly increasing. n == 0 yields a valid empty block.
std::vector<uint8_t> GorillaCompress(const uint64_t* ticks,
                                     const double* values, size_t n);

/// Decompresses a block produced by GorillaCompress. Returns kIoError on CRC
/// mismatch, truncation, or a malformed bitstream; on success `ticks` /
/// `values` (either may be null when the caller does not need it) are
/// replaced with the decoded points, values bit-exact to the originals.
Status GorillaDecompress(const uint8_t* data, size_t size,
                         std::vector<uint64_t>* ticks,
                         std::vector<double>* values);

}  // namespace dbc
