// Lightweight error-handling primitives (Status / Result<T>).
//
// The library avoids exceptions on hot paths; fallible operations return a
// Status or a Result<T>. Both are cheap to move and carry a message only in
// the failure case.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dbc {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Failure states carry a code and a
/// message. Statuses are cheap to copy in the OK case (empty string).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result of a fallible operation that produces a T on success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result built from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accesses the contained value.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dbc
