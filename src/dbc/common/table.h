// ASCII table rendering for the benchmark harness, so every bench binary can
// print rows in the same layout the paper's tables use.
#pragma once

#include <string>
#include <vector>

namespace dbc {

/// Column-aligned plain-text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row (column names).
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row (stringified cells).
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table with box-drawing separators.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 2);
  /// Formats a percentage ("83.1%").
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbc
