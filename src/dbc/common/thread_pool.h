// Work-stealing thread pool for parallelising per-unit detection work.
//
// Each worker owns a deque of tasks; Submit() places a task on the deque
// named by its lane hint, the owning worker pops from the front (FIFO, so
// older epochs retire first), and idle workers steal from the back of a
// victim chosen in seeded-random order. Stealing is "lock-free-ish": every
// deque has its own small mutex, thieves only try_lock, and the one global
// lock guards nothing but the pending-task count and the idle wait — no lock
// is ever held while a task runs. The schedule (which worker runs which
// task, in what interleaving) is deliberately unspecified; callers that need
// deterministic output must make it a pure function of task *content*, which
// is exactly what the DetectionEngine's epoch reorder buffer does and what
// scheduler_fuzz_test proves by perturbing the schedule with SchedulerChaos.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dbc {

/// Deterministic schedule-chaos knobs (the scheduler test wall): seeded
/// yield/stall injection before task execution and after completion, plus
/// forced stealing (a worker skips its own deque and scans victims first).
/// Chaos perturbs *timing and placement only* — it must never change any
/// result, and scheduler_fuzz_test asserts exactly that over hundreds of
/// seeds.
struct SchedulerChaos {
  bool enabled = false;
  uint64_t seed = 0;
  /// Probability of a sched_yield before running a task.
  double yield_prob = 0.25;
  /// Probability of sleeping up to max_stall_us instead (a "slow worker").
  double stall_prob = 0.05;
  unsigned max_stall_us = 200;
  /// Probability that an acquiring worker scans victims before its own
  /// deque, forcing steals even when local work is available.
  double force_steal_prob = 0.25;
};

/// Per-worker scheduler statistics, cumulative since pool construction.
/// `stolen` counts tasks this worker took from another worker's deque;
/// `busy_seconds` is wall time spent inside tasks (attributed to the
/// *executing* worker, stolen or not).
struct WorkerStats {
  uint64_t executed = 0;
  uint64_t stolen = 0;
  double busy_seconds = 0.0;
};

/// Fixed-size work-stealing worker pool. Tasks are std::function<void()>;
/// Submit returns a future for completion/exception propagation (exceptions
/// propagate identically whether the task ran on its home lane or was
/// stolen). The destructor drains every deque and joins all workers.
class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1; 0 means hardware concurrency).
  /// `steal_seed` seeds victim selection — it reshuffles the schedule, never
  /// the results. `chaos` injects seeded schedule perturbations for tests.
  explicit ThreadPool(size_t threads = 0, uint64_t steal_seed = 0,
                      SchedulerChaos chaos = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on an arbitrary lane; returns a future completed when
  /// the task finishes.
  std::future<void> Submit(std::function<void()> task);

  /// As above with a placement hint: the task lands on the deque of worker
  /// `lane_hint % thread_count()` and runs there unless stolen. Hints give
  /// per-unit locality; they never pin execution.
  std::future<void> Submit(size_t lane_hint, std::function<void()> task);

  /// Fire-and-forget submission (no future allocation). The task must not
  /// throw; used by the epoch scheduler, whose tasks trap their own errors.
  void Post(size_t lane_hint, std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// If any fn(i) throws, remaining indices are abandoned, every lane is
  /// joined, and the first exception is rethrown to the caller; the pool
  /// stays usable afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// As above, but fn(lane, i) also receives the executing lane's index in
  /// [0, min(n, thread_count())). Lanes map 1:1 to pool submissions for one
  /// call, so per-lane accumulators need no synchronization beyond the join.
  /// NOTE: the lane is the *submission* slot, not the executing worker — a
  /// stolen lane runs somewhere else. Attribute per-worker statistics (busy
  /// time, and so on) with CurrentWorker() instead.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  /// The executing worker's index when called from a task running on this
  /// pool, kNotAWorker otherwise. This is the correct key for per-worker
  /// attribution under stealing (DESIGN.md §15).
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  size_t CurrentWorker() const;

  /// Cumulative per-worker counters (executed / stolen / busy seconds).
  std::vector<WorkerStats> Stats() const;
  /// Total tasks executed off a foreign deque, across all workers.
  uint64_t steals() const;

  size_t thread_count() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
  };
  /// One worker's deque behind its own mutex. Owner pops front; thieves
  /// try_lock and steal from the back, so owner and thieves rarely contend.
  struct Lane {
    std::mutex mu;
    std::deque<Task> tasks;
  };
  /// Cache-line-separated per-worker counters, mutated only by the owning
  /// worker, read by Stats() with relaxed atomics.
  struct alignas(64) Counters {
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> stolen{0};
    std::atomic<double> busy_seconds{0.0};
  };

  void WorkerLoop(size_t me);
  /// Claims one task (own deque first unless chaos forces a steal, then
  /// victims in seeded order) and runs it. A claim is guaranteed to succeed:
  /// the caller holds one unit of pending_ (see WorkerLoop).
  void AcquireAndRun(size_t me, uint64_t& rng_state);
  void Enqueue(size_t lane_hint, std::function<void()> fn);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<Counters[]> counters_;
  std::vector<std::thread> workers_;
  uint64_t steal_seed_ = 0;
  SchedulerChaos chaos_;
  /// Guards pending_/stop_ and backs the idle wait; never held during task
  /// execution or deque access.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace dbc
