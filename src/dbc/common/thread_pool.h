// Fixed-size thread pool for parallelising per-unit detection work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dbc {

/// Fixed-size worker pool. Tasks are std::function<void()>; Submit returns a
/// future for completion/exception propagation. The destructor drains the
/// queue and joins all workers.
class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future completed when the task finishes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// If any fn(i) throws, remaining indices are abandoned, every lane is
  /// joined, and the first exception is rethrown to the caller; the pool
  /// stays usable afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// As above, but fn(lane, i) also receives the executing lane's index in
  /// [0, min(n, thread_count())). Lanes map 1:1 to pool submissions for one
  /// call, so per-lane accumulators (e.g. worker-utilization gauges) need no
  /// synchronization beyond the join.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dbc
