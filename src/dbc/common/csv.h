// Minimal CSV reading/writing used to export bench series and import traces.
#pragma once

#include <string>
#include <vector>

#include "dbc/common/status.h"

namespace dbc {

/// In-memory CSV table: a header row plus numeric data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return header.size(); }

  /// Column index for `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
  /// Copies column `index` out of the table.
  std::vector<double> Column(size_t index) const;
};

/// Writes the table to `path`. Overwrites existing files.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a CSV of doubles with a single header line.
Result<CsvTable> ReadCsv(const std::string& path);

}  // namespace dbc
