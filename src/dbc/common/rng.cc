#include "dbc/common/rng.h"

#include <cassert>
#include <cmath>

namespace dbc {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~0ULL) - (~0ULL) % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double p = 1.0;
    int64_t k = 0;
    do {
      ++k;
      p *= Uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last item
}

Rng Rng::Fork(uint64_t tag) {
  uint64_t sm = s_[0] ^ Rotl(s_[2], 13) ^ (tag * 0x9E3779B97F4A7C15ULL + 1);
  return Rng(SplitMix64(sm));
}

}  // namespace dbc
