#include "dbc/common/binio.h"

#include <cstring>

namespace dbc {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFFu);
}

void BinWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFFu);
}

void BinWriter::WriteF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinWriter::WriteBytes(const uint8_t* data, size_t size) {
  WriteU64(size);
  bytes_.insert(bytes_.end(), data, data + size);
}

void BinWriter::WriteString(const std::string& s) {
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void BinWriter::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  for (uint64_t x : v) WriteU64(x);
}

void BinWriter::WriteF64Vector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteF64(x);
}

bool BinReader::Require(size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

uint8_t BinReader::ReadU8() {
  if (!Require(1)) return 0;
  return data_[pos_++];
}

uint32_t BinReader::ReadU32() {
  if (!Require(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

uint64_t BinReader::ReadU64() {
  if (!Require(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double BinReader::ReadF64() {
  const uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool BinReader::ReadCount(size_t elem_size, size_t* count) {
  const uint64_t declared = ReadU64();
  // Every element occupies at least `elem_size` bytes, so a declared count
  // beyond remaining/elem_size is corrupt — reject before any allocation.
  if (failed_ || (elem_size > 0 && declared > remaining() / elem_size)) {
    failed_ = true;
    *count = 0;
    return false;
  }
  *count = static_cast<size_t>(declared);
  return true;
}

bool BinReader::ReadBytes(std::vector<uint8_t>* out) {
  size_t n = 0;
  out->clear();
  if (!ReadCount(1, &n) || !Require(n)) return false;
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool BinReader::ReadString(std::string* out) {
  size_t n = 0;
  out->clear();
  if (!ReadCount(1, &n) || !Require(n)) return false;
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool BinReader::ReadU64Vector(std::vector<uint64_t>* out) {
  size_t n = 0;
  out->clear();
  if (!ReadCount(8, &n)) return false;
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) out->push_back(ReadU64());
  return !failed_;
}

bool BinReader::ReadF64Vector(std::vector<double>* out) {
  size_t n = 0;
  out->clear();
  if (!ReadCount(8, &n)) return false;
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) out->push_back(ReadF64());
  return !failed_;
}

}  // namespace dbc
