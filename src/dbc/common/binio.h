// Bounds-checked little-endian binary serialization for durable state
// (checkpoint snapshots, WAL records, the durable alert log). A BinWriter
// appends typed primitives to a byte buffer; a BinReader consumes them and
// latches a typed error instead of over-reading — corrupt or truncated input
// can make a load *fail*, never crash or fabricate lengths. Multi-byte
// values are always little-endian, so state files are portable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dbc/common/status.h"

namespace dbc {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `size` bytes — the same
/// polynomial the Gorilla block codec and the wire protocol use, kept in
/// common so durable-state code does not pull in the storage layer.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Appends typed primitives to a growing byte buffer.
class BinWriter {
 public:
  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  /// Doubles are stored as their raw u64 bit pattern: every payload —
  /// NaN bits, infinities, -0.0, denormals — round-trips bit-exactly.
  void WriteF64(double v);
  /// Length-prefixed (u64) byte string.
  void WriteBytes(const uint8_t* data, size_t size);
  void WriteString(const std::string& s);

  void WriteU64Vector(const std::vector<uint64_t>& v);
  void WriteF64Vector(const std::vector<double>& v);
  void WriteByteVector(const std::vector<uint8_t>& v) {
    WriteBytes(v.data(), v.size());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Consumes primitives written by BinWriter. Every read is bounds-checked:
/// the first overrun latches failed() and all further reads return zeros /
/// empty values, so a decoder loop over corrupt input terminates cleanly.
class BinReader {
 public:
  BinReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinReader(const std::vector<uint8_t>& bytes)
      : BinReader(bytes.data(), bytes.size()) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadF64();
  /// Reads a length-prefixed byte string into `out`. The declared length is
  /// validated against the bytes actually remaining before any allocation,
  /// so a corrupt length cannot trigger a giant resize.
  bool ReadBytes(std::vector<uint8_t>* out);
  bool ReadString(std::string* out);
  bool ReadU64Vector(std::vector<uint64_t>* out);
  bool ReadF64Vector(std::vector<double>* out);

  /// Reads a u64 element count, failing unless count * elem_size bytes
  /// remain. Use before reserving containers of non-primitive records.
  bool ReadCount(size_t elem_size, size_t* count);

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - pos_; }

  /// kIoError once failed, OK otherwise (the uniform loader tail).
  Status status() const {
    return failed_ ? Status::IoError("truncated or corrupt state record")
                   : Status::Ok();
  }

 private:
  bool Require(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace dbc
