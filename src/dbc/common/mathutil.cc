#include "dbc/common/mathutil.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dbc {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double L2Norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Min(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double Quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = Clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

std::vector<double> Linspace(double lo, double hi, size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

bool AlmostEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace dbc
