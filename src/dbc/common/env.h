// Environment-variable knobs for the benchmark harness.
//
// Paper-scale datasets are millions of points; the default bench scale is
// proportionally reduced so `for b in build/bench/*; do $b; done` finishes in
// minutes. DBC_SCALE / DBC_REPEATS / DBC_SEED raise or pin them.
#pragma once

#include <cstdint>
#include <string>

namespace dbc {

/// Integer env var with fallback.
int64_t EnvInt(const std::string& name, int64_t fallback);

/// Floating-point env var with fallback.
double EnvDouble(const std::string& name, double fallback);

/// Global scale multiplier for dataset sizes (DBC_SCALE, default 1.0).
double BenchScale();

/// Number of randomized repetitions per experiment (DBC_REPEATS, default 3;
/// the paper uses 20).
int BenchRepeats();

/// Base seed for all experiments (DBC_SEED, default 20230407).
uint64_t BenchSeed();

}  // namespace dbc
