#include "dbc/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dbc {

std::string TextTable::ToString() const {
  // Column widths over header + all rows.
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += ' ';
      out += cell;
      out.append(width[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string sep = "+";
  for (size_t i = 0; i < cols; ++i) {
    sep.append(width[i] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::Num(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string TextTable::Pct(double fraction, int precision) {
  return Num(fraction * 100.0, precision) + "%";
}

}  // namespace dbc
