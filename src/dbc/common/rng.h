// Deterministic, seedable random number generation.
//
// All stochastic components of the library (simulator noise, genetic
// algorithm, dataset builders) draw from dbc::Rng so that every experiment is
// reproducible from a single seed. The engine is xoshiro256++, seeded through
// splitmix64, following the reference implementations by Blackman & Vigna.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbc {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256++ pseudo-random engine with distribution helpers.
///
/// Not thread-safe; create one Rng per thread (see Rng::Fork).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal via Box-Muller (cached spare deviate).
  double Normal();
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);
  /// Poisson draw (inversion for small mean, normal approx for large).
  int64_t Poisson(double mean);

  /// Index in [0, weights.size()) with probability proportional to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// choice is uniform.
  size_t WeightedChoice(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Deterministically derives an independent child stream. Children with
  /// different tags never share state with each other or the parent.
  Rng Fork(uint64_t tag);

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace dbc
