#include "dbc/common/csv.h"

#include <fstream>
#include <sstream>

namespace dbc {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> CsvTable::Column(size_t index) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(index < row.size() ? row[index] : 0.0);
  }
  return out;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ',';
    out << table.header[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty csv: " + path);
  }
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table.header.push_back(cell);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    row.reserve(table.header.size());
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (...) {
        return Status::IoError("non-numeric cell '" + cell + "' in " + path);
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace dbc
