// Run provenance: the git SHA + seed + config stamp shared by bench reports
// (BENCH_*.json) and observability snapshots (metrics JSONL), so any recorded
// number can be traced back to the exact commit and knobs that produced it.
#pragma once

#include <cstdint>
#include <string>

namespace dbc {

/// Short git SHA of the running checkout: $DBC_GIT_SHA when set (CI pins it),
/// else `git rev-parse --short=12 HEAD`, else "unknown".
std::string CurrentGitSha();

/// True when the working tree has uncommitted changes: $DBC_GIT_DIRTY when
/// set ("1"/"true" = dirty, anything else = clean; CI pins it), else
/// `git status --porcelain` non-empty. Unknown trees (no git) count as
/// dirty — a committed BENCH_*.json must prove cleanliness, not assume it.
bool CurrentGitDirty();

/// Provenance stamp attached to machine-readable artifacts.
struct RunProvenance {
  std::string git_sha = CurrentGitSha();
  /// Uncommitted-tree flag next to the SHA: numbers from a dirty tree are
  /// reproducible from no commit, and reviewers must be able to tell.
  bool dirty = CurrentGitDirty();
  uint64_t seed = 0;
  /// Free-form description of the knobs that shaped the run.
  std::string config;
};

/// Escapes a string for embedding in a JSON value.
std::string JsonEscape(const std::string& s);

}  // namespace dbc
