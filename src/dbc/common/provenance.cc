#include "dbc/common/provenance.h"

#include <cstdio>
#include <cstdlib>

namespace dbc {

std::string CurrentGitSha() {
  const char* env = std::getenv("DBC_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  std::string sha = "unknown";
  FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sha = line;
    }
    pclose(pipe);
  }
  return sha;
}

bool CurrentGitDirty() {
  const char* env = std::getenv("DBC_GIT_DIRTY");
  if (env != nullptr && env[0] != '\0') {
    const std::string v(env);
    return v == "1" || v == "true" || v == "TRUE";
  }
  FILE* pipe = popen("git status --porcelain 2>/dev/null", "r");
  if (pipe == nullptr) return true;  // cannot tell -> assume dirty
  char buf[8] = {};
  const bool any_output = std::fgets(buf, sizeof(buf), pipe) != nullptr;
  const int rc = pclose(pipe);
  if (rc != 0) return true;  // not a git tree / git failed -> assume dirty
  return any_output;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace dbc
