// Small numeric helpers shared across the library.
#pragma once

#include <cstddef>
#include <vector>

namespace dbc {

/// Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); 0 for fewer than 2 points.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double Stddev(const std::vector<double>& v);

/// Euclidean (L2) norm.
double L2Norm(const std::vector<double>& v);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Minimum / maximum element; 0 for an empty vector.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Median (copies and partially sorts); 0 for an empty vector.
double Median(std::vector<double> v);

/// p-quantile in [0,1] with linear interpolation; copies and sorts.
double Quantile(std::vector<double> v, double p);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// n evenly spaced points from lo to hi inclusive (n >= 2), or {lo} for n==1.
std::vector<double> Linspace(double lo, double hi, size_t n);

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool AlmostEqual(double a, double b, double tol = 1e-9);

/// Next power of two >= n (n >= 1). NextPow2(0) == 1.
size_t NextPow2(size_t n);

/// Ranks of the elements (average rank for ties), 1-based, as used by the
/// Spearman coefficient.
std::vector<double> Ranks(const std::vector<double>& v);

}  // namespace dbc
