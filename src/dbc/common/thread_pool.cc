#include "dbc/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "dbc/common/rng.h"
#include "dbc/common/stopwatch.h"

namespace dbc {

namespace {

/// Identifies the pool and worker index of the current thread, so tasks can
/// attribute per-worker statistics to the worker actually executing them.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = ThreadPool::kNotAWorker;
};
thread_local WorkerIdentity t_worker;

/// Cheap per-worker deterministic stream (splitmix64 over a local state);
/// used for victim selection and chaos rolls. Distinct from dbc::Rng to keep
/// the per-task cost to a couple of arithmetic ops.
inline uint64_t NextU64(uint64_t& state) { return SplitMix64(state); }

inline double NextUnit(uint64_t& state) {
  return static_cast<double>(NextU64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ThreadPool::ThreadPool(size_t threads, uint64_t steal_seed,
                       SchedulerChaos chaos)
    : steal_seed_(steal_seed), chaos_(chaos) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  lanes_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  counters_ = std::make_unique<Counters[]>(threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(size_t lane_hint, std::function<void()> fn) {
  Lane& lane = *lanes_[lane_hint % lanes_.size()];
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.tasks.push_back(Task{std::move(fn)});
  }
  // The task is findable before pending_ admits a claimer, so a woken worker
  // can always satisfy its claim (see AcquireAndRun).
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  return Submit(0, std::move(task));
}

std::future<void> ThreadPool::Submit(size_t lane_hint,
                                     std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Enqueue(lane_hint, [packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::Post(size_t lane_hint, std::function<void()> task) {
  Enqueue(lane_hint, std::move(task));
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, [&fn](size_t /*lane*/, size_t i) { fn(i); });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::future<void>> futures;
  const size_t lanes = std::min(n, thread_count());
  futures.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(Submit(lane, [&, lane] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(lane, i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  // Every lane catches its own exceptions, so the joins below never throw;
  // all lanes must be done before first_error (captured by reference) is
  // rethrown or the locals go out of scope.
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

size_t ThreadPool::CurrentWorker() const {
  return t_worker.pool == this ? t_worker.index : kNotAWorker;
}

std::vector<WorkerStats> ThreadPool::Stats() const {
  std::vector<WorkerStats> stats(workers_.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    stats[i].executed = counters_[i].executed.load(std::memory_order_relaxed);
    stats[i].stolen = counters_[i].stolen.load(std::memory_order_relaxed);
    stats[i].busy_seconds =
        counters_[i].busy_seconds.load(std::memory_order_relaxed);
  }
  return stats;
}

uint64_t ThreadPool::steals() const {
  uint64_t total = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    total += counters_[i].stolen.load(std::memory_order_relaxed);
  }
  return total;
}

void ThreadPool::WorkerLoop(size_t me) {
  t_worker = {this, me};
  // Seeded per-worker stream: victim order and chaos rolls are deterministic
  // for a (steal_seed, chaos.seed, worker) triple, so a fuzzed schedule can
  // be replayed exactly.
  uint64_t rng_state =
      steal_seed_ ^ (chaos_.seed * 0x9E3779B97F4A7C15ULL) ^
      (0xD1B54A32D192ED03ULL * (me + 1));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (pending_ == 0) return;  // stop_ set and every deque drained
      --pending_;  // claim one unit of work; a matching task exists
    }
    AcquireAndRun(me, rng_state);
  }
}

void ThreadPool::AcquireAndRun(size_t me, uint64_t& rng_state) {
  const size_t n = lanes_.size();
  Task task;
  bool stolen = false;
  // The claim made in WorkerLoop guarantees at least one task stays in some
  // deque until we take one (every pop is preceded by its own claim), but a
  // single scan can transiently miss when a concurrent thief empties a deque
  // we already passed — hence the outer retry loop, which is near-cold.
  for (bool found = false; !found;) {
    const bool force_steal =
        chaos_.enabled && n > 1 && NextUnit(rng_state) < chaos_.force_steal_prob;
    // Own deque first (FIFO pop) unless chaos forces victims first.
    if (!force_steal) {
      std::lock_guard<std::mutex> lock(lanes_[me]->mu);
      if (!lanes_[me]->tasks.empty()) {
        task = std::move(lanes_[me]->tasks.front());
        lanes_[me]->tasks.pop_front();
        found = true;
      }
    }
    if (!found && n > 1) {
      // Victims in seeded rotation; steal from the back to stay off the
      // owner's end of the deque.
      const size_t start = NextU64(rng_state) % n;
      for (size_t k = 0; k < n && !found; ++k) {
        const size_t victim = (start + k) % n;
        if (victim == me) continue;
        std::unique_lock<std::mutex> lock(lanes_[victim]->mu,
                                          std::try_to_lock);
        if (!lock.owns_lock() || lanes_[victim]->tasks.empty()) continue;
        task = std::move(lanes_[victim]->tasks.back());
        lanes_[victim]->tasks.pop_back();
        found = true;
        stolen = true;
      }
    }
    if (!found && force_steal) {
      // Forced steal found no victim work: fall back to the own deque.
      std::lock_guard<std::mutex> lock(lanes_[me]->mu);
      if (!lanes_[me]->tasks.empty()) {
        task = std::move(lanes_[me]->tasks.front());
        lanes_[me]->tasks.pop_front();
        found = true;
      }
    }
    if (!found) std::this_thread::yield();
  }
  if (chaos_.enabled) {
    const double roll = NextUnit(rng_state);
    if (roll < chaos_.stall_prob) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          1 + NextU64(rng_state) % std::max(1u, chaos_.max_stall_us)));
    } else if (roll < chaos_.stall_prob + chaos_.yield_prob) {
      std::this_thread::yield();
    }
  }
  // Attribute counts to the *executing* worker: under stealing, the owning
  // lane says nothing about where the work ran. Counted before the task runs
  // so a caller synchronized on task completion (a future) sees them.
  counters_[me].executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) counters_[me].stolen.fetch_add(1, std::memory_order_relaxed);
  Stopwatch watch;
  task.fn();
  counters_[me].busy_seconds.fetch_add(watch.ElapsedSeconds(),
                                       std::memory_order_relaxed);
  if (chaos_.enabled && NextUnit(rng_state) < chaos_.yield_prob) {
    std::this_thread::yield();  // randomize completion publication order
  }
}

}  // namespace dbc
