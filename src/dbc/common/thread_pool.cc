#include "dbc/common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dbc {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, [&fn](size_t /*lane*/, size_t i) { fn(i); });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::future<void>> futures;
  const size_t lanes = std::min(n, thread_count());
  futures.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(Submit([&, lane] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(lane, i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  // Every lane catches its own exceptions, so the joins below never throw;
  // all lanes must be done before first_error (captured by reference) is
  // rethrown or the locals go out of scope.
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace dbc
