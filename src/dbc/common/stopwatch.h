// Wall-clock stopwatch used to time training / detection phases.
#pragma once

#include <chrono>

namespace dbc {

/// Monotonic stopwatch. Starts on construction; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dbc
