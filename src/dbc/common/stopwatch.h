// Monotonic stopwatch used to time training / detection phases and the
// observability layer's stage histograms. Deliberately pinned to
// std::chrono::steady_clock: a wall clock (system_clock) can jump backwards
// under NTP adjustment, which would record negative stage durations and
// poison latency histograms.
#pragma once

#include <chrono>

namespace dbc {

/// Monotonic stopwatch. Starts on construction; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart(). Never
  /// negative: the clock is steady by construction.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed seconds since the last Lap()/Restart()/construction, resetting
  /// the origin — the idiom for timing consecutive pipeline stages with one
  /// clock read per boundary.
  double LapSeconds() {
    const Clock::time_point now = Clock::now();
    const double seconds = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return seconds;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "stage timings require a monotonic clock; see histogram "
                "sanity note above");
  Clock::time_point start_;
};

}  // namespace dbc
