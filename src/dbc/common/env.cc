#include "dbc/common/env.h"

#include <cstdlib>

namespace dbc {

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(v);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

double BenchScale() { return EnvDouble("DBC_SCALE", 1.0); }

int BenchRepeats() { return static_cast<int>(EnvInt("DBC_REPEATS", 3)); }

uint64_t BenchSeed() {
  return static_cast<uint64_t>(EnvInt("DBC_SEED", 20230407));
}

}  // namespace dbc
