#include "dbc/correlation/spearman.h"

#include "dbc/common/mathutil.h"
#include "dbc/correlation/pearson.h"

namespace dbc {

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

double SpearmanCorrelation(const Series& x, const Series& y) {
  return SpearmanCorrelation(x.values(), y.values());
}

}  // namespace dbc
