#include "dbc/correlation/spearman.h"

#include <cmath>

#include "dbc/common/mathutil.h"
#include "dbc/correlation/pearson.h"

namespace dbc {

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  // NaN has no rank: ordering against it is unspecified, so the whole
  // window is uncorrelatable rather than silently mis-ranked.
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) return 0.0;
  }
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

double SpearmanCorrelation(const Series& x, const Series& y) {
  return SpearmanCorrelation(x.values(), y.values());
}

}  // namespace dbc
