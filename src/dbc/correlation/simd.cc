#include "dbc/correlation/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(DBC_SIMD_AVX2) && defined(__x86_64__) && defined(__GNUC__)
#define DBC_SIMD_AVX2_COMPILED 1
#include <immintrin.h>
#endif

namespace dbc::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// IEEE min/max with the x86 vminpd/vmaxpd operand rule (`a OP b ? a : b`,
/// second operand on ties), so the scalar fallback reproduces the vector
/// lanes bit-for-bit — including the sign of zero.
inline double MinPd(double a, double b) { return a < b ? a : b; }
inline double MaxPd(double a, double b) { return a > b ? a : b; }

/// Four-lane accumulator state of one masked pass; element i belongs to lane
/// i mod 4. Shared by the scalar implementation (all elements) and the AVX2
/// implementation (vector tail), so both walk the identical evaluation order.
struct MaskedLanes {
  double m[4] = {0, 0, 0, 0};
  double sx[4] = {0, 0, 0, 0};
  double sy[4] = {0, 0, 0, 0};
  double sxy[4] = {0, 0, 0, 0};
  double sxx[4] = {0, 0, 0, 0};
  double syy[4] = {0, 0, 0, 0};
  double lmin[4] = {kInf, kInf, kInf, kInf};
  double lmax[4] = {-kInf, -kInf, -kInf, -kInf};
  double fmin[4] = {kInf, kInf, kInf, kInf};
  double fmax[4] = {-kInf, -kInf, -kInf, -kInf};

  inline void Accumulate(size_t i, const double* lead_v, const double* lead_sq,
                         const double* lead_m, const double* follow_v,
                         const double* follow_sq, const double* follow_m) {
    const size_t l = i & 3;
    const double jm = lead_m[i] * follow_m[i];  // exactly 0.0 or 1.0
    m[l] += jm;
    sx[l] = std::fma(lead_v[i], follow_m[i], sx[l]);
    sy[l] = std::fma(follow_v[i], lead_m[i], sy[l]);
    sxy[l] = std::fma(lead_v[i], follow_v[i], sxy[l]);
    sxx[l] = std::fma(lead_sq[i], follow_m[i], sxx[l]);
    syy[l] = std::fma(follow_sq[i], lead_m[i], syy[l]);
    const bool ok = jm != 0.0;
    lmin[l] = MinPd(lmin[l], ok ? lead_v[i] : kInf);
    lmax[l] = MaxPd(lmax[l], ok ? lead_v[i] : -kInf);
    fmin[l] = MinPd(fmin[l], ok ? follow_v[i] : kInf);
    fmax[l] = MaxPd(fmax[l], ok ? follow_v[i] : -kInf);
  }

  MaskedLagMoments Combine() const {
    MaskedLagMoments out;
    out.m = (m[0] + m[1]) + (m[2] + m[3]);
    out.sx = (sx[0] + sx[1]) + (sx[2] + sx[3]);
    out.sy = (sy[0] + sy[1]) + (sy[2] + sy[3]);
    out.sxy = (sxy[0] + sxy[1]) + (sxy[2] + sxy[3]);
    out.sxx = (sxx[0] + sxx[1]) + (sxx[2] + sxx[3]);
    out.syy = (syy[0] + syy[1]) + (syy[2] + syy[3]);
    out.lead_min = MinPd(MinPd(lmin[0], lmin[1]), MinPd(lmin[2], lmin[3]));
    out.lead_max = MaxPd(MaxPd(lmax[0], lmax[1]), MaxPd(lmax[2], lmax[3]));
    out.follow_min = MinPd(MinPd(fmin[0], fmin[1]), MinPd(fmin[2], fmin[3]));
    out.follow_max = MaxPd(MaxPd(fmax[0], fmax[1]), MaxPd(fmax[2], fmax[3]));
    return out;
  }
};

bool RuntimeDisabledByEnv() {
  const char* env = std::getenv("DBC_SIMD");
  return env != nullptr &&
         (std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
          std::strcmp(env, "0") == 0 || std::strcmp(env, "scalar") == 0);
}

bool DispatchAvx2() {
#if DBC_SIMD_AVX2_COMPILED
  static const bool enabled = Avx2Available() && !RuntimeDisabledByEnv();
  return enabled;
#else
  return false;
#endif
}

}  // namespace

bool Avx2Available() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

double DotScalar(const double* a, const double* b, size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    lanes[i & 3] = std::fma(a[i], b[i], lanes[i & 3]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

MaskedLagMoments MaskedLagPassScalar(const double* lead_v,
                                     const double* lead_sq,
                                     const double* lead_m,
                                     const double* follow_v,
                                     const double* follow_sq,
                                     const double* follow_m, size_t n) {
  MaskedLanes lanes;
  for (size_t i = 0; i < n; ++i) {
    lanes.Accumulate(i, lead_v, lead_sq, lead_m, follow_v, follow_sq,
                     follow_m);
  }
  return lanes.Combine();
}

#if DBC_SIMD_AVX2_COMPILED

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] = std::fma(a[i], b[i], lanes[i & 3]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2,fma"))) MaskedLagMoments MaskedLagPassAvx2(
    const double* lead_v, const double* lead_sq, const double* lead_m,
    const double* follow_v, const double* follow_sq, const double* follow_m,
    size_t n) {
  const __m256d pos_inf = _mm256_set1_pd(kInf);
  const __m256d neg_inf = _mm256_set1_pd(-kInf);
  const __m256d zero = _mm256_setzero_pd();
  __m256d m = zero, sx = zero, sy = zero, sxy = zero, sxx = zero, syy = zero;
  __m256d lmin = pos_inf, lmax = neg_inf, fmin = pos_inf, fmax = neg_inf;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d lv = _mm256_loadu_pd(lead_v + i);
    const __m256d lq = _mm256_loadu_pd(lead_sq + i);
    const __m256d lm = _mm256_loadu_pd(lead_m + i);
    const __m256d fv = _mm256_loadu_pd(follow_v + i);
    const __m256d fq = _mm256_loadu_pd(follow_sq + i);
    const __m256d fm = _mm256_loadu_pd(follow_m + i);
    const __m256d jm = _mm256_mul_pd(lm, fm);
    m = _mm256_add_pd(m, jm);
    sx = _mm256_fmadd_pd(lv, fm, sx);
    sy = _mm256_fmadd_pd(fv, lm, sy);
    sxy = _mm256_fmadd_pd(lv, fv, sxy);
    sxx = _mm256_fmadd_pd(lq, fm, sxx);
    syy = _mm256_fmadd_pd(fq, lm, syy);
    const __m256d ok = _mm256_cmp_pd(jm, zero, _CMP_NEQ_OQ);
    lmin = _mm256_min_pd(lmin, _mm256_blendv_pd(pos_inf, lv, ok));
    lmax = _mm256_max_pd(lmax, _mm256_blendv_pd(neg_inf, lv, ok));
    fmin = _mm256_min_pd(fmin, _mm256_blendv_pd(pos_inf, fv, ok));
    fmax = _mm256_max_pd(fmax, _mm256_blendv_pd(neg_inf, fv, ok));
  }
  MaskedLanes lanes;
  _mm256_storeu_pd(lanes.m, m);
  _mm256_storeu_pd(lanes.sx, sx);
  _mm256_storeu_pd(lanes.sy, sy);
  _mm256_storeu_pd(lanes.sxy, sxy);
  _mm256_storeu_pd(lanes.sxx, sxx);
  _mm256_storeu_pd(lanes.syy, syy);
  _mm256_storeu_pd(lanes.lmin, lmin);
  _mm256_storeu_pd(lanes.lmax, lmax);
  _mm256_storeu_pd(lanes.fmin, fmin);
  _mm256_storeu_pd(lanes.fmax, fmax);
  for (; i < n; ++i) {
    lanes.Accumulate(i, lead_v, lead_sq, lead_m, follow_v, follow_sq,
                     follow_m);
  }
  return lanes.Combine();
}

#else  // !DBC_SIMD_AVX2_COMPILED

double DotAvx2(const double* a, const double* b, size_t n) {
  return DotScalar(a, b, n);
}

MaskedLagMoments MaskedLagPassAvx2(const double* lead_v, const double* lead_sq,
                                   const double* lead_m,
                                   const double* follow_v,
                                   const double* follow_sq,
                                   const double* follow_m, size_t n) {
  return MaskedLagPassScalar(lead_v, lead_sq, lead_m, follow_v, follow_sq,
                             follow_m, n);
}

#endif  // DBC_SIMD_AVX2_COMPILED

double Dot(const double* a, const double* b, size_t n) {
  return DispatchAvx2() ? DotAvx2(a, b, n) : DotScalar(a, b, n);
}

MaskedLagMoments MaskedLagPass(const double* lead_v, const double* lead_sq,
                               const double* lead_m, const double* follow_v,
                               const double* follow_sq, const double* follow_m,
                               size_t n) {
  return DispatchAvx2()
             ? MaskedLagPassAvx2(lead_v, lead_sq, lead_m, follow_v, follow_sq,
                                 follow_m, n)
             : MaskedLagPassScalar(lead_v, lead_sq, lead_m, follow_v,
                                   follow_sq, follow_m, n);
}

const char* ActiveImplementation() { return DispatchAvx2() ? "avx2" : "scalar"; }

}  // namespace dbc::simd
