#include "dbc/correlation/pearson.h"

#include <cassert>
#include <cmath>

namespace dbc {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  assert(!x.empty());
  const size_t n = x.size();
  // Degraded-telemetry hardening: NaN/Inf points would silently poison the
  // sums and propagate into state classification; such windows are simply
  // uncorrelatable (0), like constant ones.
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) return 0.0;
  }
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double PearsonCorrelation(const Series& x, const Series& y) {
  return PearsonCorrelation(x.values(), y.values());
}

}  // namespace dbc
