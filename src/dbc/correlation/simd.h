// Explicitly vectorized inner loops of the KCD kernels, with bit-identical
// scalar fallbacks.
//
// Bit-identity contract: every routine fixes its floating-point evaluation
// order as four independent FMA lanes — element i accumulates into lane
// i mod 4 — combined as (l0 + l1) + (l2 + l3). The AVX2 implementations
// realize exactly that order with 256-bit vfmadd (one correctly rounded FMA
// per element, same as std::fma on the scalar path), so the scalar fallback,
// the AVX2 path, and any mix of the two produce identical bit patterns.
// golden_regression_test and kcd_differential_test run under both the
// DBC_SIMD=ON and =OFF CMake legs to keep that true forever.
//
// Dispatch: the AVX2 bodies are compiled with a function-level target
// attribute (never a global -mavx2, which would let the compiler
// autovectorize unrelated loops and drift their rounding), guarded at
// runtime by cpuid and at build time by the DBC_SIMD CMake option. The
// DBC_SIMD=off environment variable forces the scalar path at runtime.
#pragma once

#include <cstddef>

namespace dbc::simd {

/// Lane-split FMA dot product of two stride-1 spans.
double Dot(const double* a, const double* b, size_t n);

/// All moments one masked lag needs, gathered in a single fused pass (see
/// kcd_fast.cc, KcdMaskedFastFromStats). Inputs are the branch-free tables of
/// KcdMaskedWindowStats: `v` zeroed at invalid points, `sq` = v², `m` the
/// 0/1 mask as doubles. For each index i the pass accumulates the joint mask
/// m_i = lead_m[i]·follow_m[i] and the raw moments of the surviving pairs,
/// plus the min/max of each side over surviving points (the exact-constancy
/// test; ±inf when nothing survives).
struct MaskedLagMoments {
  double m = 0.0;    // surviving pair count (exact: sums of 0/1)
  double sx = 0.0;   // Σ lead_v·follow_m
  double sy = 0.0;   // Σ follow_v·lead_m
  double sxy = 0.0;  // Σ lead_v·follow_v
  double sxx = 0.0;  // Σ lead_v²·follow_m
  double syy = 0.0;  // Σ follow_v²·lead_m
  double lead_min = 0.0, lead_max = 0.0;
  double follow_min = 0.0, follow_max = 0.0;
};

MaskedLagMoments MaskedLagPass(const double* lead_v, const double* lead_sq,
                               const double* lead_m, const double* follow_v,
                               const double* follow_sq, const double* follow_m,
                               size_t n);

/// What Dot/MaskedLagPass actually dispatch to: "avx2" or "scalar".
const char* ActiveImplementation();

// Both implementations are always linked so the differential suite can
// compare them directly; the Avx2 entries fall back to scalar when the CPU
// lacks AVX2+FMA (or the build did without DBC_SIMD).
bool Avx2Available();
double DotScalar(const double* a, const double* b, size_t n);
double DotAvx2(const double* a, const double* b, size_t n);
MaskedLagMoments MaskedLagPassScalar(const double* lead_v,
                                     const double* lead_sq,
                                     const double* lead_m,
                                     const double* follow_v,
                                     const double* follow_sq,
                                     const double* follow_m, size_t n);
MaskedLagMoments MaskedLagPassAvx2(const double* lead_v, const double* lead_sq,
                                   const double* lead_m,
                                   const double* follow_v,
                                   const double* follow_sq,
                                   const double* follow_m, size_t n);

}  // namespace dbc::simd
