#include "dbc/correlation/kcd_fast.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dbc/ts/normalize.h"

namespace dbc {

namespace {

/// Raw-moment cancellation guard. The fast scorers compute variances as
/// Σv² − (Σv)²/len; when the centered moment is more than ~4 orders below
/// the raw moment the subtraction has shed enough digits that the score can
/// drift past the candidate margin below (and with it, the lag-selection
/// guarantee). Such overlaps re-run through the stable two-pass reference
/// scorer instead. Post-Eq. 1 data (range exactly [0, 1]) only gets here for
/// genuinely spike-dominated windows, so the fallback is cold.
constexpr double kIllConditioned = 1e-4;

/// Scores from non-fallback lags differ from the reference scorer by at most
/// ~len·eps·1/kIllConditioned ≈ 1e-8 even at the 15-bit length ceiling, so
/// any lag whose fast score trails the fast maximum by more than this margin
/// provably cannot win the reference scan — only the candidates inside the
/// margin need re-scoring through the reference formula.
constexpr double kCandidateMargin = 1e-6;

/// O(1)-prologue lag score: means, norms, and the exact-constancy test come
/// from the prefix tables; only the cross term needs a pass, and that pass is
/// a single fused multiply-add loop. Returns the same value class as the
/// reference scorer (0 for empty/constant/degenerate overlaps) but may differ
/// from it in the last few ulps on the general path — which is why the
/// winning candidates are re-scored through the reference formula afterwards.
double FastLagScore(const KcdWindowStats& lead, const KcdWindowStats& follow,
                    size_t s) {
  const size_t n = lead.size();
  const size_t len = n - s;
  if (len == 0) return 0.0;
  // Range [s, n) of lead / [0, len) of follow is constant iff no value change
  // falls inside it.
  if (lead.changes[n - 1] == lead.changes[s]) return 0.0;
  if (follow.changes[len - 1] == follow.changes[0]) return 0.0;
  const double len_d = static_cast<double>(len);
  const double sum_l = lead.prefix[n] - lead.prefix[s];
  const double ss_l = lead.prefix_sq[n] - lead.prefix_sq[s];
  const double sum_f = follow.prefix[len];
  const double ss_f = follow.prefix_sq[len];
  const double sxx = ss_l - sum_l * sum_l / len_d;
  const double syy = ss_f - sum_f * sum_f / len_d;
  if (sxx < kIllConditioned * ss_l || syy < kIllConditioned * ss_f) {
    return kcd_internal::ReferenceOverlapScore(lead.values, follow.values, s);
  }
  const double* lv = lead.values.data() + s;
  const double* fv = follow.values.data();
  double dot = 0.0;
  for (size_t i = 0; i < len; ++i) dot += lv[i] * fv[i];
  const double sxy = dot - sum_l * sum_f / len_d;
  return sxy / std::sqrt(sxx * syy);
}

/// Fused single-pass masked lag score: the reference kernel's mean pass and
/// moment pass collapse into one loop of raw moments over the surviving
/// pairs. Skip (NaN) and constancy semantics are identical to
/// ReferenceMaskedOverlapScore.
double FusedMaskedLagScore(const std::vector<double>& lead,
                           const std::vector<double>& follow,
                           const std::vector<uint8_t>& lead_ok,
                           const std::vector<uint8_t>& follow_ok, size_t s,
                           size_t min_overlap) {
  const size_t len = lead.size() - s;
  size_t m = 0;
  double sx = 0.0, sy = 0.0, sxy = 0.0, sxx = 0.0, syy = 0.0;
  double lead0 = 0.0, follow0 = 0.0;
  bool lead_const = true, follow_const = true;
  for (size_t i = 0; i < len; ++i) {
    if (lead_ok[i + s] == 0 || follow_ok[i] == 0) continue;
    const double a = lead[i + s];
    const double b = follow[i];
    if (m == 0) {
      lead0 = a;
      follow0 = b;
    }
    lead_const = lead_const && a == lead0;
    follow_const = follow_const && b == follow0;
    sx += a;
    sy += b;
    sxy += a * b;
    sxx += a * a;
    syy += b * b;
    ++m;
  }
  if (m < std::max<size_t>(min_overlap, 2)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (lead_const || follow_const) return 0.0;
  const double md = static_cast<double>(m);
  const double cxx = sxx - sx * sx / md;
  const double cyy = syy - sy * sy / md;
  if (cxx < kIllConditioned * sxx || cyy < kIllConditioned * syy) {
    return kcd_internal::ReferenceMaskedOverlapScore(lead, follow, lead_ok,
                                                     follow_ok, s, min_overlap);
  }
  const double cxy = sxy - sx * sy / md;
  return cxy / std::sqrt(cxx * cyy);
}

size_t MaxDelay(size_t n, const KcdOptions& options) {
  return std::min(n - options.min_overlap,
                  static_cast<size_t>(options.max_delay_fraction *
                                      static_cast<double>(n)));
}

}  // namespace

KcdWindowStats BuildKcdWindowStats(const Series& window, bool normalize) {
  KcdWindowStats stats;
  const size_t n = window.size();
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(window[i])) {
      stats.finite = false;
      return stats;  // tables stay unbuilt; the kernel returns {0, 0}
    }
  }
  stats.values = window.values();
  if (normalize) MinMaxNormalizeInPlace(stats.values);
  stats.prefix.resize(n + 1);
  stats.prefix_sq.resize(n + 1);
  stats.changes.resize(n);
  stats.prefix[0] = 0.0;
  stats.prefix_sq[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = stats.values[i];
    stats.prefix[i + 1] = stats.prefix[i] + v;
    stats.prefix_sq[i + 1] = stats.prefix_sq[i] + v * v;
    stats.changes[i] =
        i == 0 ? 0 : stats.changes[i - 1] + (v != stats.values[i - 1] ? 1 : 0);
  }
  return stats;
}

KcdResult KcdFastFromStats(const KcdWindowStats& sx, const KcdWindowStats& sy,
                           const KcdOptions& options) {
  KcdResult result;
  if (!sx.finite || !sy.finite) return result;
  assert(sx.size() == sy.size());
  const size_t n = sx.size();
  if (n < options.min_overlap) return result;

  const size_t max_delay = MaxDelay(n, options);
  // Approximate scan: record every lag's fast score in reference scan order
  // (s ascending, forward before backward at each |s|).
  std::vector<std::pair<int, double>> scan;
  scan.reserve(options.scan_negative ? 2 * max_delay + 1 : max_delay + 1);
  double best_fast = -2.0;  // below any achievable correlation
  for (size_t s = 0; s <= max_delay; ++s) {
    const double fwd = FastLagScore(sx, sy, s);
    scan.emplace_back(static_cast<int>(s), fwd);
    best_fast = std::max(best_fast, fwd);
    if (s > 0 && options.scan_negative) {
      const double bwd = FastLagScore(sy, sx, s);
      scan.emplace_back(-static_cast<int>(s), bwd);
      best_fast = std::max(best_fast, bwd);
    }
  }
  if (best_fast <= -2.0) return result;
  // Seal through the reference formula: every lag within the candidate
  // margin of the fast maximum is re-scored exactly, and the reference
  // kernel's own selection rule (first strictly-greater in scan order) is
  // replayed over them. Lags outside the margin provably cannot win the
  // reference scan, so best_lag — ties included — and the reported score are
  // bit-identical to Kcd(). Usually the margin holds exactly one lag.
  double best = -2.0;
  int best_lag = 0;
  for (const auto& [lag, fast_score] : scan) {
    if (fast_score < best_fast - kCandidateMargin) continue;
    const double exact =
        lag >= 0 ? kcd_internal::ReferenceOverlapScore(sx.values, sy.values,
                                                       static_cast<size_t>(lag))
                 : kcd_internal::ReferenceOverlapScore(
                       sy.values, sx.values, static_cast<size_t>(-lag));
    if (exact > best) {
      best = exact;
      best_lag = lag;
    }
  }
  result.best_lag = best_lag;
  result.score = best;
  return result;
}

KcdResult KcdFast(const Series& x, const Series& y, const KcdOptions& options) {
  assert(x.size() == y.size());
  if (x.size() < options.min_overlap) return {};
  const KcdWindowStats sx = BuildKcdWindowStats(x, options.normalize);
  const KcdWindowStats sy = BuildKcdWindowStats(y, options.normalize);
  return KcdFastFromStats(sx, sy, options);
}

KcdResult KcdMaskedFast(const Series& x, const Series& y,
                        const std::vector<uint8_t>* mask_x,
                        const std::vector<uint8_t>* mask_y,
                        const KcdOptions& options) {
  assert(x.size() == y.size());
  KcdResult result;
  const size_t n = x.size();
  if (n < options.min_overlap) return result;

  // Effective masks: identical construction to KcdMasked.
  std::vector<uint8_t> okx(n, 1), oky(n, 1);
  for (size_t i = 0; i < n; ++i) {
    if (mask_x != nullptr && i < mask_x->size() && (*mask_x)[i] == 0) okx[i] = 0;
    if (mask_y != nullptr && i < mask_y->size() && (*mask_y)[i] == 0) oky[i] = 0;
    if (!std::isfinite(x[i])) okx[i] = 0;
    if (!std::isfinite(y[i])) oky[i] = 0;
  }

  std::vector<double> nx = x.values();
  std::vector<double> ny = y.values();
  if (options.normalize) {
    kcd_internal::MaskedMinMaxNormalize(nx, okx);
    kcd_internal::MaskedMinMaxNormalize(ny, oky);
  }

  const size_t max_delay = MaxDelay(n, options);
  // Approximate scan in reference order, then exact re-scoring of the lags
  // inside the candidate margin — same near-tie discipline as
  // KcdFastFromStats. Lags under the overlap floor (NaN) never become
  // candidates, exactly as the reference scan skips them.
  std::vector<std::pair<int, double>> scan;
  scan.reserve(options.scan_negative ? 2 * max_delay + 1 : max_delay + 1);
  double best_fast = -2.0;
  for (size_t s = 0; s <= max_delay; ++s) {
    const double fwd =
        FusedMaskedLagScore(nx, ny, okx, oky, s, options.min_overlap);
    if (!std::isnan(fwd)) {
      scan.emplace_back(static_cast<int>(s), fwd);
      best_fast = std::max(best_fast, fwd);
    }
    if (s > 0 && options.scan_negative) {
      const double bwd =
          FusedMaskedLagScore(ny, nx, oky, okx, s, options.min_overlap);
      if (!std::isnan(bwd)) {
        scan.emplace_back(-static_cast<int>(s), bwd);
        best_fast = std::max(best_fast, bwd);
      }
    }
  }
  if (best_fast <= -2.0) return result;  // no lag met the overlap floor
  double best = -2.0;
  int best_lag = 0;
  for (const auto& [lag, fast_score] : scan) {
    if (fast_score < best_fast - kCandidateMargin) continue;
    const double exact =
        lag >= 0 ? kcd_internal::ReferenceMaskedOverlapScore(
                       nx, ny, okx, oky, static_cast<size_t>(lag),
                       options.min_overlap)
                 : kcd_internal::ReferenceMaskedOverlapScore(
                       ny, nx, oky, okx, static_cast<size_t>(-lag),
                       options.min_overlap);
    if (exact > best) {
      best = exact;
      best_lag = lag;
    }
  }
  result.best_lag = best_lag;
  result.score = best;
  return result;
}

KcdResult KcdCompute(const Series& x, const Series& y,
                     const KcdOptions& options) {
  return options.impl == KcdImpl::kReference ? Kcd(x, y, options)
                                             : KcdFast(x, y, options);
}

KcdResult KcdMaskedCompute(const Series& x, const Series& y,
                           const std::vector<uint8_t>* mask_x,
                           const std::vector<uint8_t>* mask_y,
                           const KcdOptions& options) {
  return options.impl == KcdImpl::kReference
             ? KcdMasked(x, y, mask_x, mask_y, options)
             : KcdMaskedFast(x, y, mask_x, mask_y, options);
}

}  // namespace dbc
