#include "dbc/correlation/kcd_fast.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dbc/correlation/simd.h"
#include "dbc/ts/normalize.h"

namespace dbc {

namespace {

/// Raw-moment cancellation guard. The fast scorers compute variances as
/// Σv² − (Σv)²/len; when the centered moment is more than ~4 orders below
/// the raw moment the subtraction has shed enough digits that the score can
/// drift past the candidate margin below (and with it, the lag-selection
/// guarantee). Such overlaps re-run through the stable two-pass reference
/// scorer instead. Post-Eq. 1 data (range exactly [0, 1]) only gets here for
/// genuinely spike-dominated windows, so the fallback is cold.
constexpr double kIllConditioned = 1e-4;

/// Scores from non-fallback lags differ from the reference scorer by at most
/// ~len·eps·1/kIllConditioned ≈ 1e-8 even at the 15-bit length ceiling, so
/// any lag whose fast score trails the fast maximum by more than this margin
/// provably cannot win the reference scan — only the candidates inside the
/// margin need re-scoring through the reference formula.
constexpr double kCandidateMargin = 1e-6;

/// O(1)-prologue lag score: means, norms, and the exact-constancy test come
/// from the prefix tables; only the cross term needs a pass, and that pass is
/// a single fused multiply-add loop. Returns the same value class as the
/// reference scorer (0 for empty/constant/degenerate overlaps) but may differ
/// from it in the last few ulps on the general path — which is why the
/// winning candidates are re-scored through the reference formula afterwards.
double FastLagScore(const KcdWindowStats& lead, const KcdWindowStats& follow,
                    size_t s) {
  const size_t n = lead.size();
  const size_t len = n - s;
  if (len == 0) return 0.0;
  // Range [s, n) of lead / [0, len) of follow is constant iff no value change
  // falls inside it.
  if (lead.changes[n - 1] == lead.changes[s]) return 0.0;
  if (follow.changes[len - 1] == follow.changes[0]) return 0.0;
  const double len_d = static_cast<double>(len);
  const double sum_l = lead.prefix[n] - lead.prefix[s];
  const double ss_l = lead.prefix_sq[n] - lead.prefix_sq[s];
  const double sum_f = follow.prefix[len];
  const double ss_f = follow.prefix_sq[len];
  const double sxx = ss_l - sum_l * sum_l / len_d;
  const double syy = ss_f - sum_f * sum_f / len_d;
  if (sxx < kIllConditioned * ss_l || syy < kIllConditioned * ss_f) {
    return kcd_internal::ReferenceOverlapScore(lead.values, follow.values, s);
  }
  const double* lv = lead.values.data() + s;
  const double* fv = follow.values.data();
  const double dot = simd::Dot(lv, fv, len);
  const double sxy = dot - sum_l * sum_f / len_d;
  return sxy / std::sqrt(sxx * syy);
}

/// Batched masked lag score: the surviving-pair count, all five raw moments,
/// and both sides' surviving min/max come out of one branch-free fused pass
/// over the zero-filled tables (simd::MaskedLagPass). Zeroed entries are
/// exact no-ops in every sum — fma(x, 0, acc) == acc from a +0 start — and
/// the pair count is an exact sum of 0/1 doubles, so the skip (NaN) and
/// constancy (min == max over survivors; -0 == +0 numerically, matching the
/// reference kernel's value-equality test) classifications are identical to
/// ReferenceMaskedOverlapScore, not merely close.
double BatchedMaskedLagScore(const KcdMaskedWindowStats& lead,
                             const KcdMaskedWindowStats& follow, size_t s,
                             size_t min_overlap) {
  const size_t len = lead.size() - s;
  const simd::MaskedLagMoments mom = simd::MaskedLagPass(
      lead.zeroed.data() + s, lead.zeroed_sq.data() + s,
      lead.mask_d.data() + s, follow.zeroed.data(), follow.zeroed_sq.data(),
      follow.mask_d.data(), len);
  if (mom.m < static_cast<double>(std::max<size_t>(min_overlap, 2))) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (mom.lead_min == mom.lead_max || mom.follow_min == mom.follow_max) {
    return 0.0;
  }
  const double cxx = mom.sxx - mom.sx * mom.sx / mom.m;
  const double cyy = mom.syy - mom.sy * mom.sy / mom.m;
  if (cxx < kIllConditioned * mom.sxx || cyy < kIllConditioned * mom.syy) {
    return kcd_internal::ReferenceMaskedOverlapScore(
        lead.values, follow.values, lead.ok, follow.ok, s, min_overlap);
  }
  const double cxy = mom.sxy - mom.sx * mom.sy / mom.m;
  return cxy / std::sqrt(cxx * cyy);
}

size_t MaxDelay(size_t n, const KcdOptions& options) {
  return std::min(n - options.min_overlap,
                  static_cast<size_t>(options.max_delay_fraction *
                                      static_cast<double>(n)));
}

}  // namespace

KcdWindowStats BuildKcdWindowStats(const Series& window, bool normalize) {
  return BuildKcdWindowStats(window.values().data(), window.size(), normalize);
}

KcdWindowStats BuildKcdWindowStats(const double* data, size_t n,
                                   bool normalize) {
  KcdWindowStats stats;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      stats.finite = false;
      return stats;  // tables stay unbuilt; the kernel returns {0, 0}
    }
  }
  stats.values.assign(data, data + n);
  if (normalize) MinMaxNormalizeInPlace(stats.values);
  stats.prefix.resize(n + 1);
  stats.prefix_sq.resize(n + 1);
  stats.changes.resize(n);
  stats.prefix[0] = 0.0;
  stats.prefix_sq[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = stats.values[i];
    stats.prefix[i + 1] = stats.prefix[i] + v;
    stats.prefix_sq[i + 1] = stats.prefix_sq[i] + v * v;
    stats.changes[i] =
        i == 0 ? 0 : stats.changes[i - 1] + (v != stats.values[i - 1] ? 1 : 0);
  }
  return stats;
}

KcdResult KcdFastFromStats(const KcdWindowStats& sx, const KcdWindowStats& sy,
                           const KcdOptions& options) {
  KcdResult result;
  if (!sx.finite || !sy.finite) return result;
  assert(sx.size() == sy.size());
  const size_t n = sx.size();
  if (n < options.min_overlap) return result;

  const size_t max_delay = MaxDelay(n, options);
  // Approximate scan: record every lag's fast score in reference scan order
  // (s ascending, forward before backward at each |s|).
  std::vector<std::pair<int, double>> scan;
  scan.reserve(options.scan_negative ? 2 * max_delay + 1 : max_delay + 1);
  double best_fast = -2.0;  // below any achievable correlation
  for (size_t s = 0; s <= max_delay; ++s) {
    const double fwd = FastLagScore(sx, sy, s);
    scan.emplace_back(static_cast<int>(s), fwd);
    best_fast = std::max(best_fast, fwd);
    if (s > 0 && options.scan_negative) {
      const double bwd = FastLagScore(sy, sx, s);
      scan.emplace_back(-static_cast<int>(s), bwd);
      best_fast = std::max(best_fast, bwd);
    }
  }
  if (best_fast <= -2.0) return result;
  // Seal through the reference formula: every lag within the candidate
  // margin of the fast maximum is re-scored exactly, and the reference
  // kernel's own selection rule (first strictly-greater in scan order) is
  // replayed over them. Lags outside the margin provably cannot win the
  // reference scan, so best_lag — ties included — and the reported score are
  // bit-identical to Kcd(). Usually the margin holds exactly one lag.
  double best = -2.0;
  int best_lag = 0;
  for (const auto& [lag, fast_score] : scan) {
    if (fast_score < best_fast - kCandidateMargin) continue;
    const double exact =
        lag >= 0 ? kcd_internal::ReferenceOverlapScore(sx.values, sy.values,
                                                       static_cast<size_t>(lag))
                 : kcd_internal::ReferenceOverlapScore(
                       sy.values, sx.values, static_cast<size_t>(-lag));
    if (exact > best) {
      best = exact;
      best_lag = lag;
    }
  }
  result.best_lag = best_lag;
  result.score = best;
  return result;
}

KcdResult KcdFast(const Series& x, const Series& y, const KcdOptions& options) {
  assert(x.size() == y.size());
  if (x.size() < options.min_overlap) return {};
  const KcdWindowStats sx = BuildKcdWindowStats(x, options.normalize);
  const KcdWindowStats sy = BuildKcdWindowStats(y, options.normalize);
  return KcdFastFromStats(sx, sy, options);
}

KcdMaskedWindowStats BuildKcdMaskedWindowStats(const double* values, size_t n,
                                               std::vector<uint8_t> ok,
                                               bool normalize) {
  assert(ok.size() == n);
  KcdMaskedWindowStats stats;
  stats.values.assign(values, values + n);
  // Effective mask: identical construction to KcdMasked — non-finite points
  // drop out regardless of what the caller's validity mask says.
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(stats.values[i])) ok[i] = 0;
  }
  if (normalize) kcd_internal::MaskedMinMaxNormalize(stats.values, ok);
  stats.ok = std::move(ok);
  stats.zeroed.resize(n);
  stats.zeroed_sq.resize(n);
  stats.mask_d.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = stats.ok[i] != 0 ? stats.values[i] : 0.0;
    stats.zeroed[i] = v;
    stats.zeroed_sq[i] = v * v;
    stats.mask_d[i] = stats.ok[i] != 0 ? 1.0 : 0.0;
  }
  return stats;
}

KcdResult KcdMaskedFastFromStats(const KcdMaskedWindowStats& sx,
                                 const KcdMaskedWindowStats& sy,
                                 const KcdOptions& options) {
  assert(sx.size() == sy.size());
  KcdResult result;
  const size_t n = sx.size();
  if (n < options.min_overlap) return result;

  const size_t max_delay = MaxDelay(n, options);
  // Approximate scan in reference order, then exact re-scoring of the lags
  // inside the candidate margin — same near-tie discipline as
  // KcdFastFromStats. Lags under the overlap floor (NaN) never become
  // candidates, exactly as the reference scan skips them.
  std::vector<std::pair<int, double>> scan;
  scan.reserve(options.scan_negative ? 2 * max_delay + 1 : max_delay + 1);
  double best_fast = -2.0;
  for (size_t s = 0; s <= max_delay; ++s) {
    const double fwd = BatchedMaskedLagScore(sx, sy, s, options.min_overlap);
    if (!std::isnan(fwd)) {
      scan.emplace_back(static_cast<int>(s), fwd);
      best_fast = std::max(best_fast, fwd);
    }
    if (s > 0 && options.scan_negative) {
      const double bwd = BatchedMaskedLagScore(sy, sx, s, options.min_overlap);
      if (!std::isnan(bwd)) {
        scan.emplace_back(-static_cast<int>(s), bwd);
        best_fast = std::max(best_fast, bwd);
      }
    }
  }
  if (best_fast <= -2.0) return result;  // no lag met the overlap floor
  double best = -2.0;
  int best_lag = 0;
  for (const auto& [lag, fast_score] : scan) {
    if (fast_score < best_fast - kCandidateMargin) continue;
    const double exact =
        lag >= 0 ? kcd_internal::ReferenceMaskedOverlapScore(
                       sx.values, sy.values, sx.ok, sy.ok,
                       static_cast<size_t>(lag), options.min_overlap)
                 : kcd_internal::ReferenceMaskedOverlapScore(
                       sy.values, sx.values, sy.ok, sx.ok,
                       static_cast<size_t>(-lag), options.min_overlap);
    if (exact > best) {
      best = exact;
      best_lag = lag;
    }
  }
  result.best_lag = best_lag;
  result.score = best;
  return result;
}

KcdResult KcdMaskedFast(const Series& x, const Series& y,
                        const std::vector<uint8_t>* mask_x,
                        const std::vector<uint8_t>* mask_y,
                        const KcdOptions& options) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n < options.min_overlap) return {};

  std::vector<uint8_t> okx(n, 1), oky(n, 1);
  for (size_t i = 0; i < n; ++i) {
    if (mask_x != nullptr && i < mask_x->size() && (*mask_x)[i] == 0) okx[i] = 0;
    if (mask_y != nullptr && i < mask_y->size() && (*mask_y)[i] == 0) oky[i] = 0;
  }
  const KcdMaskedWindowStats sx = BuildKcdMaskedWindowStats(
      x.values().data(), n, std::move(okx), options.normalize);
  const KcdMaskedWindowStats sy = BuildKcdMaskedWindowStats(
      y.values().data(), n, std::move(oky), options.normalize);
  return KcdMaskedFastFromStats(sx, sy, options);
}

KcdResult KcdCompute(const Series& x, const Series& y,
                     const KcdOptions& options) {
  return options.impl == KcdImpl::kReference ? Kcd(x, y, options)
                                             : KcdFast(x, y, options);
}

KcdResult KcdMaskedCompute(const Series& x, const Series& y,
                           const std::vector<uint8_t>* mask_x,
                           const std::vector<uint8_t>* mask_y,
                           const KcdOptions& options) {
  return options.impl == KcdImpl::kReference
             ? KcdMasked(x, y, mask_x, mask_y, options)
             : KcdMaskedFast(x, y, mask_x, mask_y, options);
}

}  // namespace dbc
