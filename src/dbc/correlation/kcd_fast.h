// Fast-path KCD kernel (§III-B, Eq. 1-4).
//
// The reference kernel in kcd.h walks every candidate lag with two full
// passes over the overlap: one for the means, one for the centered moments —
// O(n) work per lag, O(n·s) per pair with s = n/2 lags. This kernel
// precomputes, once per series, the Eq. 1-normalized values together with
// prefix sums of v and v² and a prefix count of value changes. Each lag's
// means, L2 norms, and exact-constancy test then become O(1) lookups and the
// per-lag work collapses to a single fused multiply-add pass for the cross
// term (the only quantity a shifted overlap cannot precompute). Every lag
// whose approximate score lands within a small margin of the scan maximum is
// then re-scored exactly through the reference formula
// (kcd_internal::ReferenceOverlapScore) and the reference selection rule is
// replayed over those candidates — usually just one lag. The result (score
// AND best_lag, ties included) is therefore bit-identical to the reference
// kernel, which keeps alert streams, thresholds, and golden fixtures stable
// across kernels instead of merely "close".
//
// The prefix tables are independent of the pairing, so
// CorrelationAnalyzer shares one table per (kpi, db, window) across all N-1
// pairs that touch the series (see correlation_matrix.h); the reference path
// rebuilds the normalization N-1 times.
//
// Numerical domain: the tables are exact-in-structure but the per-lag norms
// use the raw-moment identity Σv² − (Σv)²/len, which cancels
// catastrophically only when an overlap's variance is many orders below its
// magnitude. Exactly-constant overlaps are caught structurally via the
// change counts; an overlap whose centered moment falls 4+ orders below its
// raw moment falls back to the stable two-pass scorer for that lag, so the
// candidate-margin argument holds on arbitrary (even unnormalized) inputs.
// Post-Eq. 1 data (min-max normalized to [0, 1]) never triggers the
// fallback outside spike-dominated windows.
#pragma once

#include <cstdint>
#include <vector>

#include "dbc/correlation/kcd.h"
#include "dbc/storage/series_view.h"
#include "dbc/ts/series.h"

namespace dbc {

/// Per-series precomputation shared by every pair (and every lag) that
/// touches the series within one KPI window.
struct KcdWindowStats {
  /// Eq. 1-normalized copy of the window (raw copy when normalize is off).
  std::vector<double> values;
  /// prefix[i] = Σ_{k<i} values[k]; size n+1.
  std::vector<double> prefix;
  /// prefix_sq[i] = Σ_{k<i} values[k]²; size n+1.
  std::vector<double> prefix_sq;
  /// changes[i] = |{j in [1, i] : values[j] != values[j-1]}|; size n
  /// (empty when n == 0). The range [a, b) is exactly constant iff
  /// changes[b-1] == changes[a] — the O(1) counterpart of the reference
  /// kernel's per-lag constancy scan.
  std::vector<uint32_t> changes;
  /// False when the window carries a NaN/Inf point: the kernel returns the
  /// uncorrelatable {0, 0} without touching the (unbuilt) tables.
  bool finite = true;

  size_t size() const { return values.size(); }
};

/// Builds the table for one window; applies Eq. 1 via MinMaxNormalizeInPlace
/// when `normalize` is set (identically to the reference kernel, so the
/// winning-lag re-evaluation sees bit-identical inputs).
KcdWindowStats BuildKcdWindowStats(const Series& window, bool normalize);
/// Same, straight off a contiguous span — the zero-copy entry the columnar
/// store's hot SeriesViews feed (no Series materialization, no re-copy
/// before the prefix scan). The view's validity mask is ignored: clean-path
/// stats are only built for fully valid windows.
KcdWindowStats BuildKcdWindowStats(const double* data, size_t n,
                                   bool normalize);
inline KcdWindowStats BuildKcdWindowStats(const SeriesView& window,
                                          bool normalize) {
  return BuildKcdWindowStats(window.data, window.size, normalize);
}

/// Per-series precomputation for the masked kernel. Prefix sums cannot
/// absorb a lag-dependent joint mask, but the per-lag pass can still be made
/// branch-free and batched: alongside the masked-normalized values (masked
/// entries untouched, exactly what the reference re-scorer expects) the
/// table carries zero-filled copies — value, value², and the mask itself as
/// 0/1 doubles — so every lag's surviving-pair count and raw moments become
/// plain dot products over contiguous arrays (simd::MaskedLagPass), shared
/// across all N-1 pairs that touch the series.
struct KcdMaskedWindowStats {
  /// Masked Eq. 1-normalized values; masked entries keep their original
  /// (possibly non-finite) payloads and never enter a sum.
  std::vector<double> values;
  /// ok[i] != 0 when point i participates (caller mask ∧ finite).
  std::vector<uint8_t> ok;
  std::vector<double> zeroed;     // ok ? values : 0.0
  std::vector<double> zeroed_sq;  // zeroed²
  std::vector<double> mask_d;     // ok as 0.0 / 1.0
  size_t size() const { return values.size(); }
};

/// Builds the masked table for one window. `ok` marks caller-valid points
/// (from a telemetry validity mask); non-finite values are additionally
/// masked out, identically to KcdMasked's effective-mask construction.
KcdMaskedWindowStats BuildKcdMaskedWindowStats(const double* values, size_t n,
                                               std::vector<uint8_t> ok,
                                               bool normalize);

/// Batched masked entry: both tables from BuildKcdMaskedWindowStats (with
/// matching `normalize`). Bit-identical to KcdMasked() — the lag scan runs
/// over the branch-free tables and the near-maximal candidates are re-scored
/// through ReferenceMaskedOverlapScore, the same sealing discipline as the
/// clean fast path.
KcdResult KcdMaskedFastFromStats(const KcdMaskedWindowStats& sx,
                                 const KcdMaskedWindowStats& sy,
                                 const KcdOptions& options = {});

/// Fast KCD over two equally sized windows. Semantics match Kcd() exactly:
/// same lag set, same skip rules, same tie-breaking (first strictly greater
/// score in scan order wins, forward before backward at each |lag|).
KcdResult KcdFast(const Series& x, const Series& y,
                  const KcdOptions& options = {});

/// Batched entry: both tables were built (with matching `normalize`) by
/// BuildKcdWindowStats. Requires sx.size() == sy.size().
KcdResult KcdFastFromStats(const KcdWindowStats& sx, const KcdWindowStats& sy,
                           const KcdOptions& options = {});

/// Fast masked KCD. Prefix tables cannot absorb a lag-dependent joint mask
/// (the surviving-pair count is itself a cross term), so this variant fuses
/// the reference kernel's two passes per lag into a single raw-moment pass
/// and re-evaluates the winner through ReferenceMaskedOverlapScore for a
/// bit-identical score. Same skip/NaN semantics as KcdMasked().
KcdResult KcdMaskedFast(const Series& x, const Series& y,
                        const std::vector<uint8_t>* mask_x,
                        const std::vector<uint8_t>* mask_y,
                        const KcdOptions& options = {});

/// Dispatchers honouring options.impl — the knob call sites on the verdict
/// path use, so a deployment (or a differential test) can flip kernels
/// without code changes.
KcdResult KcdCompute(const Series& x, const Series& y,
                     const KcdOptions& options = {});
KcdResult KcdMaskedCompute(const Series& x, const Series& y,
                           const std::vector<uint8_t>* mask_x,
                           const std::vector<uint8_t>* mask_y,
                           const KcdOptions& options = {});

}  // namespace dbc
