// Spearman rank correlation (related-work comparator [41]).
#pragma once

#include <vector>

#include "dbc/ts/series.h"

namespace dbc {

/// Spearman rho in [-1, 1] via Pearson on tie-averaged ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

double SpearmanCorrelation(const Series& x, const Series& y);

}  // namespace dbc
