#include "dbc/correlation/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dbc/ts/normalize.h"

namespace dbc {

double DtwDistance(const std::vector<double>& x, const std::vector<double>& y,
                   size_t band) {
  const size_t n = x.size();
  const size_t m = y.size();
  if (n == 0 || m == 0) return 0.0;

  const double kInf = std::numeric_limits<double>::infinity();
  size_t effective_band = band;
  if (effective_band != 0) {
    // A path must be able to reach (n, m).
    const size_t diff = n > m ? n - m : m - n;
    effective_band = std::max(effective_band, diff);
  }

  // Two-row DP.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    size_t jlo = 1, jhi = m;
    if (effective_band != 0) {
      jlo = i > effective_band ? i - effective_band : 1;
      jhi = std::min(m, i + effective_band);
    }
    for (size_t j = jlo; j <= jhi; ++j) {
      const double d = (x[i - 1] - y[j - 1]) * (x[i - 1] - y[j - 1]);
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = d + best;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double DtwSimilarity(const Series& x, const Series& y, size_t band) {
  const Series nx = MinMaxNormalize(x);
  const Series ny = MinMaxNormalize(y);
  const double dist = DtwDistance(nx.values(), ny.values(), band);
  const double denom = static_cast<double>(std::max<size_t>(1, x.size()));
  return 1.0 / (1.0 + dist / denom);
}

}  // namespace dbc
