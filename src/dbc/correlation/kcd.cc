#include "dbc/correlation/kcd.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dbc/ts/normalize.h"

namespace dbc {

namespace {

/// Centered, L2-normalized inner product of the overlap of x and y at a
/// non-negative lag s applied to `lead` (x when x lags y): compares
/// lead[s..n) against follow[0..n-s). Returns 0 when either overlap is
/// constant.
double OverlapScore(const std::vector<double>& lead,
                    const std::vector<double>& follow, size_t s) {
  const size_t n = lead.size();
  const size_t len = n - s;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < len; ++i) {
    mx += lead[i + s];
    my += follow[i];
  }
  mx /= static_cast<double>(len);
  my /= static_cast<double>(len);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double dx = lead[i + s] - mx;
    const double dy = follow[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

KcdResult Kcd(const Series& x, const Series& y, const KcdOptions& options) {
  assert(x.size() == y.size());
  KcdResult result;
  const size_t n = x.size();
  if (n < options.min_overlap) return result;

  std::vector<double> nx = x.values();
  std::vector<double> ny = y.values();
  if (options.normalize) {
    MinMaxNormalizeInPlace(nx);
    MinMaxNormalizeInPlace(ny);
  }

  const size_t max_delay = std::min(
      n - options.min_overlap,
      static_cast<size_t>(options.max_delay_fraction * static_cast<double>(n)));

  double best = -2.0;  // below any achievable correlation
  int best_lag = 0;
  for (size_t s = 0; s <= max_delay; ++s) {
    // x lagging y by s.
    const double fwd = OverlapScore(nx, ny, s);
    if (fwd > best) {
      best = fwd;
      best_lag = static_cast<int>(s);
    }
    if (s > 0 && options.scan_negative) {
      // y lagging x by s.
      const double bwd = OverlapScore(ny, nx, s);
      if (bwd > best) {
        best = bwd;
        best_lag = -static_cast<int>(s);
      }
    }
  }
  result.score = best <= -2.0 ? 0.0 : best;
  result.best_lag = best_lag;
  return result;
}

double KcdScore(const Series& x, const Series& y, const KcdOptions& options) {
  return Kcd(x, y, options).score;
}

}  // namespace dbc
