#include "dbc/correlation/kcd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dbc/ts/normalize.h"

namespace dbc {

namespace kcd_internal {

// An exactly-constant overlap carries no trend information, but letting the
// mean subtraction decide that is numerically treacherous: when the sum of a
// constant run rounds, every residual collapses to the same epsilon and the
// quotient cancels to a spurious +/-1. Both scorers therefore detect exact
// constancy explicitly and return 0, which also gives the fast kernel a
// bit-exact semantic to reproduce from its prefix tables.
double ReferenceOverlapScore(const std::vector<double>& lead,
                             const std::vector<double>& follow, size_t s) {
  const size_t n = lead.size();
  const size_t len = n - s;
  if (len == 0) return 0.0;
  const double lead0 = lead[s];
  const double follow0 = follow[0];
  bool lead_const = true, follow_const = true;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < len; ++i) {
    mx += lead[i + s];
    my += follow[i];
    lead_const = lead_const && lead[i + s] == lead0;
    follow_const = follow_const && follow[i] == follow0;
  }
  if (lead_const || follow_const) return 0.0;
  mx /= static_cast<double>(len);
  my /= static_cast<double>(len);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double dx = lead[i + s] - mx;
    const double dy = follow[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double ReferenceMaskedOverlapScore(const std::vector<double>& lead,
                                   const std::vector<double>& follow,
                                   const std::vector<uint8_t>& lead_ok,
                                   const std::vector<uint8_t>& follow_ok,
                                   size_t s, size_t min_overlap) {
  const size_t len = lead.size() - s;
  size_t m = 0;
  double mx = 0.0, my = 0.0;
  double lead0 = 0.0, follow0 = 0.0;
  bool lead_const = true, follow_const = true;
  for (size_t i = 0; i < len; ++i) {
    if (lead_ok[i + s] == 0 || follow_ok[i] == 0) continue;
    if (m == 0) {
      lead0 = lead[i + s];
      follow0 = follow[i];
    }
    mx += lead[i + s];
    my += follow[i];
    lead_const = lead_const && lead[i + s] == lead0;
    follow_const = follow_const && follow[i] == follow0;
    ++m;
  }
  if (m < std::max<size_t>(min_overlap, 2)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (lead_const || follow_const) return 0.0;
  mx /= static_cast<double>(m);
  my /= static_cast<double>(m);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < len; ++i) {
    if (lead_ok[i + s] == 0 || follow_ok[i] == 0) continue;
    const double dx = lead[i + s] - mx;
    const double dy = follow[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void MaskedMinMaxNormalize(std::vector<double>& v,
                           const std::vector<uint8_t>& ok) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < v.size(); ++i) {
    if (ok[i] == 0) continue;
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  if (!(hi > lo)) {
    // Constant or empty unmasked set: zero it, exactly as
    // MinMaxNormalizeInPlace does for whole windows, so constant feeds score
    // 0 instead of riding on rounding residue.
    for (size_t i = 0; i < v.size(); ++i) {
      if (ok[i] != 0) v[i] = 0.0;
    }
    return;
  }
  for (size_t i = 0; i < v.size(); ++i) {
    if (ok[i] != 0) v[i] = (v[i] - lo) / (hi - lo);
  }
}

}  // namespace kcd_internal

namespace {
using kcd_internal::MaskedMinMaxNormalize;
using kcd_internal::ReferenceMaskedOverlapScore;
using kcd_internal::ReferenceOverlapScore;
}  // namespace

KcdResult Kcd(const Series& x, const Series& y, const KcdOptions& options) {
  assert(x.size() == y.size());
  KcdResult result;
  const size_t n = x.size();
  if (n < options.min_overlap) return result;

  // Degraded feeds can carry NaN/Inf points; min-max normalization would
  // smear them across the whole window. Such windows carry no usable trend:
  // return the "uncorrelatable" result instead of propagating NaN into the
  // level classification.
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) return result;
  }

  std::vector<double> nx = x.values();
  std::vector<double> ny = y.values();
  if (options.normalize) {
    MinMaxNormalizeInPlace(nx);
    MinMaxNormalizeInPlace(ny);
  }

  const size_t max_delay = std::min(
      n - options.min_overlap,
      static_cast<size_t>(options.max_delay_fraction * static_cast<double>(n)));

  double best = -2.0;  // below any achievable correlation
  int best_lag = 0;
  for (size_t s = 0; s <= max_delay; ++s) {
    // x lagging y by s.
    const double fwd = ReferenceOverlapScore(nx, ny, s);
    if (fwd > best) {
      best = fwd;
      best_lag = static_cast<int>(s);
    }
    if (s > 0 && options.scan_negative) {
      // y lagging x by s.
      const double bwd = ReferenceOverlapScore(ny, nx, s);
      if (bwd > best) {
        best = bwd;
        best_lag = -static_cast<int>(s);
      }
    }
  }
  result.score = best <= -2.0 ? 0.0 : best;
  result.best_lag = best_lag;
  return result;
}

KcdResult KcdMasked(const Series& x, const Series& y,
                    const std::vector<uint8_t>* mask_x,
                    const std::vector<uint8_t>* mask_y,
                    const KcdOptions& options) {
  assert(x.size() == y.size());
  KcdResult result;
  const size_t n = x.size();
  if (n < options.min_overlap) return result;

  // Effective masks: the caller's mask (null = all-valid) AND finiteness.
  std::vector<uint8_t> okx(n, 1), oky(n, 1);
  for (size_t i = 0; i < n; ++i) {
    if (mask_x != nullptr && i < mask_x->size() && (*mask_x)[i] == 0) okx[i] = 0;
    if (mask_y != nullptr && i < mask_y->size() && (*mask_y)[i] == 0) oky[i] = 0;
    if (!std::isfinite(x[i])) okx[i] = 0;
    if (!std::isfinite(y[i])) oky[i] = 0;
  }

  std::vector<double> nx = x.values();
  std::vector<double> ny = y.values();
  if (options.normalize) {
    MaskedMinMaxNormalize(nx, okx);
    MaskedMinMaxNormalize(ny, oky);
  }

  const size_t max_delay = std::min(
      n - options.min_overlap,
      static_cast<size_t>(options.max_delay_fraction * static_cast<double>(n)));

  double best = -2.0;
  int best_lag = 0;
  for (size_t s = 0; s <= max_delay; ++s) {
    const double fwd =
        ReferenceMaskedOverlapScore(nx, ny, okx, oky, s, options.min_overlap);
    if (!std::isnan(fwd) && fwd > best) {
      best = fwd;
      best_lag = static_cast<int>(s);
    }
    if (s > 0 && options.scan_negative) {
      const double bwd =
          ReferenceMaskedOverlapScore(ny, nx, oky, okx, s, options.min_overlap);
      if (!std::isnan(bwd) && bwd > best) {
        best = bwd;
        best_lag = -static_cast<int>(s);
      }
    }
  }
  result.score = best <= -2.0 ? 0.0 : best;
  result.best_lag = best_lag;
  return result;
}

double KcdScore(const Series& x, const Series& y, const KcdOptions& options) {
  return Kcd(x, y, options).score;
}

}  // namespace dbc
