// Key Correlation Distance (KCD) — the paper's core correlation measure
// (§III-B, Eq. 1-4).
//
// Two same-KPI windows from two databases of a unit are min-max normalized
// (Eq. 1), then scanned over candidate collection delays s (Eq. 2/3): for
// every lag the overlapping portions are mean-centered, their inner product
// taken and normalized by the L2 norms of the centered overlaps (Eq. 4). The
// KCD is the maximum of these normalized scores over all lags — i.e. the best
// achievable Pearson correlation under a single constant per-window offset,
// which is exactly the delay model of the cloud collection pipeline (§II-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbc/ts/series.h"

namespace dbc {

/// Tuning knobs for the KCD computation.
struct KcdOptions {
  /// Maximum scanned delay as a fraction of the window length. The paper uses
  /// s in [1, m] with n = 2m, i.e. 0.5.
  double max_delay_fraction = 0.5;
  /// Also scan negative lags (y ahead of x). The collection delay can fall on
  /// either series, so both directions are scanned by default.
  bool scan_negative = true;
  /// Skip Eq. 1 when the caller already normalized the windows.
  bool normalize = true;
  /// Overlaps shorter than this are not scored (avoids spurious +/-1 scores
  /// from two-point overlaps).
  size_t min_overlap = 4;
};

/// Outcome of a KCD evaluation.
struct KcdResult {
  /// Best normalized correlation over the lag scan, in [-1, 1]. Windows where
  /// one side is constant yield 0 (no trend information).
  double score = 0.0;
  /// Lag (in points) achieving the best score; positive means x lags y.
  int best_lag = 0;
};

/// Computes the KCD of two equally sized windows. Requires x.size() ==
/// y.size(); returns {0, 0} for windows shorter than options.min_overlap.
KcdResult Kcd(const Series& x, const Series& y, const KcdOptions& options = {});

/// Masked KCD for degraded telemetry: points whose mask entry is 0 (or whose
/// value is non-finite) are excluded from the Eq. 1 normalization and from
/// every lag's overlap, while the surviving points keep their original time
/// positions — compressing them out instead would destroy the collection-
/// delay alignment the lag scan exists to find. A lag whose masked overlap
/// falls below options.min_overlap is not scored; if no lag qualifies the
/// result is {0, 0}. Null masks mean all-valid.
KcdResult KcdMasked(const Series& x, const Series& y,
                    const std::vector<uint8_t>* mask_x,
                    const std::vector<uint8_t>* mask_y,
                    const KcdOptions& options = {});

/// Convenience: score only.
double KcdScore(const Series& x, const Series& y, const KcdOptions& options = {});

}  // namespace dbc
