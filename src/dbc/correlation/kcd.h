// Key Correlation Distance (KCD) — the paper's core correlation measure
// (§III-B, Eq. 1-4).
//
// Two same-KPI windows from two databases of a unit are min-max normalized
// (Eq. 1), then scanned over candidate collection delays s (Eq. 2/3): for
// every lag the overlapping portions are mean-centered, their inner product
// taken and normalized by the L2 norms of the centered overlaps (Eq. 4). The
// KCD is the maximum of these normalized scores over all lags — i.e. the best
// achievable Pearson correlation under a single constant per-window offset,
// which is exactly the delay model of the cloud collection pipeline (§II-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbc/ts/series.h"

namespace dbc {

/// Which kernel evaluates the lag scan. Both implement the same measure:
/// kReference is the two-pass textbook transcription of Eq. 2-4 (kept as the
/// differential-testing oracle), kFast replaces the per-lag mean/L2 passes
/// with O(1) prefix-sum lookups (see kcd_fast.h) and re-scores only the
/// near-maximal candidate lags through the reference formula, so both the
/// reported score and the selected lag are bit-identical to kReference.
enum class KcdImpl { kFast, kReference };

/// Tuning knobs for the KCD computation.
struct KcdOptions {
  /// Maximum scanned delay as a fraction of the window length. The paper uses
  /// s in [1, m] with n = 2m, i.e. 0.5.
  double max_delay_fraction = 0.5;
  /// Also scan negative lags (y ahead of x). The collection delay can fall on
  /// either series, so both directions are scanned by default.
  bool scan_negative = true;
  /// Skip Eq. 1 when the caller already normalized the windows.
  bool normalize = true;
  /// Overlaps shorter than this are not scored (avoids spurious +/-1 scores
  /// from two-point overlaps).
  size_t min_overlap = 4;
  /// Kernel selection for dispatching call sites (CorrelationAnalyzer and the
  /// streaming hot path). Kcd()/KcdMasked() below always run the reference
  /// kernel regardless of this knob.
  KcdImpl impl = KcdImpl::kFast;
};

/// Outcome of a KCD evaluation.
struct KcdResult {
  /// Best normalized correlation over the lag scan, in [-1, 1]. Windows where
  /// one side is constant yield 0 (no trend information).
  double score = 0.0;
  /// Lag (in points) achieving the best score; positive means x lags y.
  int best_lag = 0;
};

/// Computes the KCD of two equally sized windows. Requires x.size() ==
/// y.size(); returns {0, 0} for windows shorter than options.min_overlap.
KcdResult Kcd(const Series& x, const Series& y, const KcdOptions& options = {});

/// Masked KCD for degraded telemetry: points whose mask entry is 0 (or whose
/// value is non-finite) are excluded from the Eq. 1 normalization and from
/// every lag's overlap, while the surviving points keep their original time
/// positions — compressing them out instead would destroy the collection-
/// delay alignment the lag scan exists to find. A lag whose masked overlap
/// falls below options.min_overlap is not scored; if no lag qualifies the
/// result is {0, 0}. Null masks mean all-valid.
KcdResult KcdMasked(const Series& x, const Series& y,
                    const std::vector<uint8_t>* mask_x,
                    const std::vector<uint8_t>* mask_y,
                    const KcdOptions& options = {});

/// Convenience: score only.
double KcdScore(const Series& x, const Series& y, const KcdOptions& options = {});

namespace kcd_internal {

/// Centered, L2-normalized inner product of the overlap of `lead` and
/// `follow` at non-negative lag s (Eq. 4): compares lead[s..n) against
/// follow[0..n-s). Returns 0 for empty or exactly-constant overlaps (no trend
/// information). Shared by the reference kernel's scan and by the fast
/// kernel's exact re-scoring of candidate lags, which makes the two kernels
/// bit-identical on both the reported score and the selected lag.
double ReferenceOverlapScore(const std::vector<double>& lead,
                             const std::vector<double>& follow, size_t s);

/// Masked ReferenceOverlapScore: index pairs where either side is masked out
/// drop from the sums, the rest keep their positions. Returns NaN when fewer
/// than max(min_overlap, 2) pairs survive; 0 when a surviving side is
/// exactly constant.
double ReferenceMaskedOverlapScore(const std::vector<double>& lead,
                                   const std::vector<double>& follow,
                                   const std::vector<uint8_t>& lead_ok,
                                   const std::vector<uint8_t>& follow_ok,
                                   size_t s, size_t min_overlap);

/// Eq. 1 over the unmasked points only; masked entries are left untouched
/// (they never enter an overlap sum). A constant (or empty) unmasked set is
/// zeroed, matching MinMaxNormalizeInPlace.
void MaskedMinMaxNormalize(std::vector<double>& v,
                           const std::vector<uint8_t>& ok);

}  // namespace kcd_internal

}  // namespace dbc
