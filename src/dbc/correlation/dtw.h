// Dynamic time warping distance (paper baseline "MM-DTW").
//
// Classic O(n*m) DP with an optional Sakoe-Chiba band. The paper argues DTW
// mis-scores cloud-database pairs because it warps each point independently
// while real collection delays are a single constant offset per window —
// Table X quantifies that with MM-DTW vs MM-KCD.
#pragma once

#include <cstddef>
#include <vector>

#include "dbc/ts/series.h"

namespace dbc {

/// DTW alignment cost of x and y with squared point cost.
/// `band` limits |i - j| (0 = unconstrained). Returns +inf-free finite cost
/// whenever a path exists (always true for band >= |n - m|).
double DtwDistance(const std::vector<double>& x, const std::vector<double>& y,
                   size_t band = 0);

/// Similarity in (0, 1]: 1 / (1 + DTW / n), so that larger means more
/// correlated and the value is comparable across window sizes.
double DtwSimilarity(const Series& x, const Series& y, size_t band = 0);

}  // namespace dbc
