// Pearson product-moment correlation (paper baseline "MM-Pearson").
#pragma once

#include <vector>

#include "dbc/ts/series.h"

namespace dbc {

/// Pearson correlation in [-1, 1]; 0 when either input is constant.
/// Requires equal, non-zero sizes.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Series overload.
double PearsonCorrelation(const Series& x, const Series& y);

}  // namespace dbc
