#include "dbc/nn/gru_vae.h"

#include <cassert>
#include <cmath>

#include "dbc/nn/activations.h"

namespace dbc {
namespace nn {

GruVae::GruVae(const GruVaeConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.input_dim, config.hidden_dim, rng),
      mu_head_(config.hidden_dim, config.latent_dim, rng),
      logvar_head_(config.hidden_dim, config.latent_dim, rng),
      dec1_(config.latent_dim, config.hidden_dim, rng),
      dec2_(config.hidden_dim, config.input_dim, rng),
      adam_(config.learning_rate) {
  adam_.RegisterLayer(encoder_);
  adam_.RegisterLayer(mu_head_);
  adam_.RegisterLayer(logvar_head_);
  adam_.RegisterLayer(dec1_);
  adam_.RegisterLayer(dec2_);
}

double GruVae::TrainSequence(const std::vector<Vec>& xs, Rng& rng) {
  if (xs.empty()) return 0.0;
  adam_.ZeroGrad();

  const std::vector<Vec> hs = encoder_.ForwardSequence(xs);
  const size_t steps = xs.size();
  std::vector<StepCache> caches(steps);
  double total_loss = 0.0;

  // Per-step heads: forward, cache everything needed by backward.
  for (size_t t = 0; t < steps; ++t) {
    StepCache& c = caches[t];
    c.h = hs[t];
    c.mu = MatVec(mu_head_.Params()[0]->value, c.h);
    c.logvar = MatVec(logvar_head_.Params()[0]->value, c.h);
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      c.mu[i] += mu_head_.Params()[1]->value(0, i);
      c.logvar[i] += logvar_head_.Params()[1]->value(0, i);
      // Guard against exploding exp() early in training.
      if (c.logvar[i] > 8.0) c.logvar[i] = 8.0;
      if (c.logvar[i] < -8.0) c.logvar[i] = -8.0;
    }
    c.eps.resize(config_.latent_dim);
    c.z.resize(config_.latent_dim);
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      c.eps[i] = rng.Normal();
      c.z[i] = c.mu[i] + c.eps[i] * std::exp(0.5 * c.logvar[i]);
    }
    c.dh1_pre = dec1_.Forward(c.z);
    c.dh1 = Relu(c.dh1_pre);
    c.xhat = dec2_.Forward(c.dh1);

    // Loss: 0.5*||x - xhat||^2 + beta * KL(q || N(0, I)).
    double recon = 0.0;
    for (size_t i = 0; i < config_.input_dim; ++i) {
      const double d = c.xhat[i] - xs[t][i];
      recon += 0.5 * d * d;
    }
    double kl = 0.0;
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      kl += -0.5 * (1.0 + c.logvar[i] - c.mu[i] * c.mu[i] -
                    std::exp(c.logvar[i]));
    }
    total_loss += recon + config_.kl_weight * kl;
  }

  // Backward: per-step heads produce dL/dh_t; GRU BPTT consumes them all.
  std::vector<Vec> dh_per_step(steps, Vec(config_.hidden_dim, 0.0));
  for (size_t t = 0; t < steps; ++t) {
    StepCache& c = caches[t];
    Vec dxhat(config_.input_dim);
    for (size_t i = 0; i < config_.input_dim; ++i) {
      dxhat[i] = c.xhat[i] - xs[t][i];
    }
    Vec ddh1 = dec2_.BackwardWithInput(dxhat, c.dh1);
    for (size_t i = 0; i < config_.hidden_dim; ++i) {
      if (c.dh1_pre[i] <= 0.0) ddh1[i] = 0.0;
    }
    Vec dz = dec1_.BackwardWithInput(ddh1, c.z);

    // z = mu + eps * exp(0.5*logvar)
    Vec dmu(config_.latent_dim), dlogvar(config_.latent_dim);
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      const double sigma = std::exp(0.5 * c.logvar[i]);
      dmu[i] = dz[i] + config_.kl_weight * c.mu[i];
      dlogvar[i] = dz[i] * c.eps[i] * 0.5 * sigma +
                   config_.kl_weight * 0.5 * (std::exp(c.logvar[i]) - 1.0);
    }
    Vec dh = mu_head_.BackwardWithInput(dmu, c.h);
    AddInPlace(dh, logvar_head_.BackwardWithInput(dlogvar, c.h));
    dh_per_step[t] = std::move(dh);
  }
  encoder_.BackwardSequence(dh_per_step);

  adam_.ClipGradNorm(config_.grad_clip);
  adam_.Step();
  return total_loss / static_cast<double>(steps);
}

std::vector<double> GruVae::Score(const std::vector<Vec>& xs) {
  std::vector<double> scores(xs.size(), 0.0);
  if (xs.empty()) return scores;
  const std::vector<Vec> hs = encoder_.ForwardSequence(xs);
  for (size_t t = 0; t < xs.size(); ++t) {
    Vec mu = MatVec(mu_head_.Params()[0]->value, hs[t]);
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      mu[i] += mu_head_.Params()[1]->value(0, i);
    }
    Vec dh1 = Relu(dec1_.Forward(mu));
    Vec xhat = dec2_.Forward(dh1);
    double err = 0.0;
    for (size_t i = 0; i < config_.input_dim; ++i) {
      const double d = xhat[i] - xs[t][i];
      err += d * d;
    }
    scores[t] = err / static_cast<double>(config_.input_dim);
  }
  return scores;
}

}  // namespace nn
}  // namespace dbc
