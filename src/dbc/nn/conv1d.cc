#include "dbc/nn/conv1d.h"

#include <cassert>

namespace dbc {
namespace nn {

Conv1d::Conv1d(size_t in_channels, size_t out_channels, size_t kernel, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      w_(Mat::Glorot(out_channels, in_channels * kernel, rng)),
      b_(1, out_channels) {
  assert(kernel % 2 == 1);
}

Vec Conv1d::Forward(const Vec& x, size_t t) {
  assert(x.size() == in_channels_ * t);
  cached_x_ = x;
  cached_t_ = t;
  const long half = static_cast<long>(kernel_ / 2);
  Vec y(out_channels_ * t, 0.0);
  for (size_t o = 0; o < out_channels_; ++o) {
    for (size_t pos = 0; pos < t; ++pos) {
      double acc = b_.value(0, o);
      for (size_t c = 0; c < in_channels_; ++c) {
        for (size_t k = 0; k < kernel_; ++k) {
          const long src = static_cast<long>(pos) + static_cast<long>(k) - half;
          if (src < 0 || src >= static_cast<long>(t)) continue;
          acc += w_.value(o, c * kernel_ + k) *
                 x[c * t + static_cast<size_t>(src)];
        }
      }
      y[o * t + pos] = acc;
    }
  }
  return y;
}

Vec Conv1d::Backward(const Vec& dy) {
  const size_t t = cached_t_;
  assert(dy.size() == out_channels_ * t);
  const long half = static_cast<long>(kernel_ / 2);
  Vec dx(in_channels_ * t, 0.0);
  for (size_t o = 0; o < out_channels_; ++o) {
    for (size_t pos = 0; pos < t; ++pos) {
      const double g = dy[o * t + pos];
      if (g == 0.0) continue;
      b_.grad(0, o) += g;
      for (size_t c = 0; c < in_channels_; ++c) {
        for (size_t k = 0; k < kernel_; ++k) {
          const long src = static_cast<long>(pos) + static_cast<long>(k) - half;
          if (src < 0 || src >= static_cast<long>(t)) continue;
          const size_t xi = c * t + static_cast<size_t>(src);
          w_.grad(o, c * kernel_ + k) += g * cached_x_[xi];
          dx[xi] += g * w_.value(o, c * kernel_ + k);
        }
      }
    }
  }
  return dx;
}

}  // namespace nn
}  // namespace dbc
