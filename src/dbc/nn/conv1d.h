// 1-D convolution layer (same padding) for the SR-CNN baseline.
//
// Signals are channel-major: a (C, T) feature map is a Vec of length C*T with
// channel c occupying [c*T, (c+1)*T).
#pragma once

#include <vector>

#include "dbc/nn/param.h"

namespace dbc {
namespace nn {

/// Conv1D with odd kernel size and zero same-padding: output length equals
/// input length.
class Conv1d {
 public:
  /// kernel must be odd.
  Conv1d(size_t in_channels, size_t out_channels, size_t kernel, Rng& rng);

  /// x has length in_channels * t; returns out_channels * t.
  Vec Forward(const Vec& x, size_t t);

  /// dy has length out_channels * t (for the same t as the last Forward);
  /// accumulates gradients and returns dL/dx.
  Vec Backward(const Vec& dy);

  std::vector<Param*> Params() { return {&w_, &b_}; }

  size_t in_channels() const { return in_channels_; }
  size_t out_channels() const { return out_channels_; }
  size_t kernel() const { return kernel_; }

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_;
  Param w_;  // (out_channels, in_channels * kernel)
  Param b_;  // (1, out_channels)
  Vec cached_x_;
  size_t cached_t_ = 0;
};

}  // namespace nn
}  // namespace dbc
