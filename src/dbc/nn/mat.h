// Dense matrix/vector primitives for the minimal neural-network substrate.
//
// The baselines SR-CNN and OmniAnomaly need small trainable networks (a 1-D
// CNN and a GRU-VAE). Everything here is CPU double-precision, row-major,
// and sized for windows of tens of points — clarity over throughput.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "dbc/common/rng.h"

namespace dbc {
namespace nn {

using Vec = std::vector<double>;

/// Row-major dense matrix.
class Mat {
 public:
  Mat() = default;
  Mat(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), d_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return d_.size(); }

  double operator()(size_t r, size_t c) const { return d_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return d_[r * cols_ + c]; }

  Vec& data() { return d_; }
  const Vec& data() const { return d_; }

  void Fill(double v) { std::fill(d_.begin(), d_.end(), v); }

  /// Glorot-uniform initialization with the layer fan-in/out.
  static Mat Glorot(size_t rows, size_t cols, Rng& rng);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vec d_;
};

/// y = M x  (x sized cols, result sized rows).
Vec MatVec(const Mat& m, const Vec& x);

/// y = M^T x (x sized rows, result sized cols).
Vec MatTVec(const Mat& m, const Vec& x);

/// grad += outer(dy, x): accumulates a rank-1 update into `grad`.
void AddOuter(Mat& grad, const Vec& dy, const Vec& x);

/// Element-wise helpers.
Vec Add(const Vec& a, const Vec& b);
Vec Sub(const Vec& a, const Vec& b);
Vec Mul(const Vec& a, const Vec& b);
Vec Scale(const Vec& a, double k);
void AddInPlace(Vec& a, const Vec& b);

}  // namespace nn
}  // namespace dbc
