#include "dbc/nn/param.h"

#include <cmath>

namespace dbc {
namespace nn {

void Adam::Register(Param* p) {
  slots_.push_back({p, Vec(p->value.size(), 0.0), Vec(p->value.size(), 0.0)});
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (auto& slot : slots_) {
    Vec& value = slot.param->value.data();
    const Vec& grad = slot.param->grad.data();
    for (size_t i = 0; i < value.size(); ++i) {
      slot.m[i] = beta1_ * slot.m[i] + (1.0 - beta1_) * grad[i];
      slot.v[i] = beta2_ * slot.v[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double mhat = slot.m[i] / bc1;
      const double vhat = slot.v[i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (auto& slot : slots_) slot.param->ZeroGrad();
}

void Adam::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (const auto& slot : slots_) {
    for (double g : slot.param->grad.data()) total += g * g;
  }
  total = std::sqrt(total);
  if (total <= max_norm || total == 0.0) return;
  const double scale = max_norm / total;
  for (auto& slot : slots_) {
    for (double& g : slot.param->grad.data()) g *= scale;
  }
}

}  // namespace nn
}  // namespace dbc
