// Fully connected layer with cached-input backward pass.
#pragma once

#include <vector>

#include "dbc/nn/param.h"

namespace dbc {
namespace nn {

/// y = W x + b. Forward caches x for the subsequent Backward; the layer
/// therefore processes one sample at a time (plain SGD/Adam, no batching).
class Dense {
 public:
  Dense(size_t in, size_t out, Rng& rng)
      : w_(Mat::Glorot(out, in, rng)), b_(1, out) {}

  Vec Forward(const Vec& x);

  /// Accumulates dW/db from dy and returns dL/dx.
  Vec Backward(const Vec& dy);

  /// Stateless variant used when the layer is applied many times before the
  /// backward pass (e.g. once per sequence step): the caller supplies the
  /// input that produced dy.
  Vec BackwardWithInput(const Vec& dy, const Vec& x);

  std::vector<Param*> Params() { return {&w_, &b_}; }

  size_t in_dim() const { return w_.value.cols(); }
  size_t out_dim() const { return w_.value.rows(); }

 private:
  Param w_;
  Param b_;
  Vec cached_x_;
};

}  // namespace nn
}  // namespace dbc
