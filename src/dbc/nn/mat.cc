#include "dbc/nn/mat.h"

#include <cmath>

namespace dbc {
namespace nn {

Mat Mat::Glorot(size_t rows, size_t cols, Rng& rng) {
  Mat m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.d_) v = rng.Uniform(-limit, limit);
  return m;
}

Vec MatVec(const Mat& m, const Vec& x) {
  assert(x.size() == m.cols());
  Vec y(m.rows(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < m.cols(); ++c) acc += m(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Vec MatTVec(const Mat& m, const Vec& x) {
  assert(x.size() == m.rows());
  Vec y(m.cols(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) y[c] += m(r, c) * x[r];
  }
  return y;
}

void AddOuter(Mat& grad, const Vec& dy, const Vec& x) {
  assert(dy.size() == grad.rows() && x.size() == grad.cols());
  for (size_t r = 0; r < grad.rows(); ++r) {
    for (size_t c = 0; c < grad.cols(); ++c) grad(r, c) += dy[r] * x[c];
  }
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a);
  for (size_t i = 0; i < out.size(); ++i) out[i] += b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a);
  for (size_t i = 0; i < out.size(); ++i) out[i] -= b[i];
  return out;
}

Vec Mul(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a);
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Vec Scale(const Vec& a, double k) {
  Vec out(a);
  for (double& v : out) v *= k;
  return out;
}

void AddInPlace(Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

}  // namespace nn
}  // namespace dbc
