// GRU-VAE sequence model — the OmniAnomaly-style substrate (Su et al. [15]).
//
// A GRU encoder summarizes the multivariate window up to step t; a diagonal
// Gaussian latent is sampled by reparameterization and decoded back to a
// reconstruction of x_t. Training maximizes the ELBO (MSE reconstruction +
// KL); at inference the per-step anomaly score is the reconstruction error
// with the latent mean (low reconstruction probability = anomalous).
#pragma once

#include <vector>

#include "dbc/nn/dense.h"
#include "dbc/nn/gru.h"
#include "dbc/nn/param.h"

namespace dbc {
namespace nn {

/// Architecture/training hyperparameters for the GRU-VAE.
struct GruVaeConfig {
  size_t input_dim = 5;
  size_t hidden_dim = 16;
  size_t latent_dim = 4;
  double learning_rate = 1e-2;
  /// Weight of the KL term in the ELBO.
  double kl_weight = 0.12;
  double grad_clip = 5.0;
};

/// Minimal GRU encoder + Gaussian latent + MLP decoder.
class GruVae {
 public:
  GruVae(const GruVaeConfig& config, Rng& rng);

  /// One gradient step on a window (sequence of input vectors). Returns the
  /// mean per-step loss (reconstruction + weighted KL).
  double TrainSequence(const std::vector<Vec>& xs, Rng& rng);

  /// Per-step reconstruction error (mean squared, latent = posterior mean).
  std::vector<double> Score(const std::vector<Vec>& xs);

  const GruVaeConfig& config() const { return config_; }

 private:
  struct StepCache {
    Vec h, mu, logvar, eps, z, dh1_pre, dh1, xhat;
  };

  GruVaeConfig config_;
  Gru encoder_;
  Dense mu_head_;
  Dense logvar_head_;
  Dense dec1_;
  Dense dec2_;
  Adam adam_;
};

}  // namespace nn
}  // namespace dbc
