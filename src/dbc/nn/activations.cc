#include "dbc/nn/activations.h"

#include <cmath>

namespace dbc {
namespace nn {

double SigmoidScalar(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

Vec Sigmoid(const Vec& x) {
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = SigmoidScalar(x[i]);
  return out;
}

Vec SigmoidGradFromOutput(const Vec& s) {
  Vec out(s.size());
  for (size_t i = 0; i < s.size(); ++i) out[i] = s[i] * (1.0 - s[i]);
  return out;
}

Vec Tanh(const Vec& x) {
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = std::tanh(x[i]);
  return out;
}

Vec TanhGradFromOutput(const Vec& t) {
  Vec out(t.size());
  for (size_t i = 0; i < t.size(); ++i) out[i] = 1.0 - t[i] * t[i];
  return out;
}

Vec Relu(const Vec& x) {
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
  return out;
}

Vec ReluGradFromOutput(const Vec& y) {
  Vec out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = y[i] > 0.0 ? 1.0 : 0.0;
  return out;
}

}  // namespace nn
}  // namespace dbc
