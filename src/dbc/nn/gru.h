// GRU layer with full backpropagation through time, the temporal backbone of
// the OmniAnomaly-style baseline (Chung et al. [35]).
#pragma once

#include <vector>

#include "dbc/nn/param.h"

namespace dbc {
namespace nn {

/// Gated recurrent unit over a sequence of input vectors.
///
///   z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)
///   r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)
///   g_t = tanh  (Wh x_t + Uh (r_t * h_{t-1}) + bh)
///   h_t = (1 - z_t) * h_{t-1} + z_t * g_t
///
/// ForwardSequence caches all per-step intermediates; BackwardSequence
/// consumes per-step dL/dh_t and accumulates parameter gradients via BPTT.
class Gru {
 public:
  Gru(size_t input_dim, size_t hidden_dim, Rng& rng);

  /// Runs the GRU from h_0 = 0 over xs; returns h_1..h_T (one per input).
  std::vector<Vec> ForwardSequence(const std::vector<Vec>& xs);

  /// dh_per_step[t] is dL/dh_t from the per-step heads. Accumulates parameter
  /// gradients; returns dL/dx_t for each step (usually unused).
  std::vector<Vec> BackwardSequence(const std::vector<Vec>& dh_per_step);

  std::vector<Param*> Params() {
    return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_};
  }

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  struct StepCache {
    Vec x;
    Vec h_prev;
    Vec z;
    Vec r;
    Vec g;  // candidate state (tanh)
  };

  size_t input_dim_;
  size_t hidden_dim_;
  Param wz_, uz_, bz_;
  Param wr_, ur_, br_;
  Param wh_, uh_, bh_;
  std::vector<StepCache> cache_;
};

}  // namespace nn
}  // namespace dbc
