#include "dbc/nn/gru.h"

#include <cassert>

#include "dbc/nn/activations.h"

namespace dbc {
namespace nn {

Gru::Gru(size_t input_dim, size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wz_(Mat::Glorot(hidden_dim, input_dim, rng)),
      uz_(Mat::Glorot(hidden_dim, hidden_dim, rng)),
      bz_(1, hidden_dim),
      wr_(Mat::Glorot(hidden_dim, input_dim, rng)),
      ur_(Mat::Glorot(hidden_dim, hidden_dim, rng)),
      br_(1, hidden_dim),
      wh_(Mat::Glorot(hidden_dim, input_dim, rng)),
      uh_(Mat::Glorot(hidden_dim, hidden_dim, rng)),
      bh_(1, hidden_dim) {}

std::vector<Vec> Gru::ForwardSequence(const std::vector<Vec>& xs) {
  cache_.clear();
  cache_.reserve(xs.size());
  std::vector<Vec> hs;
  hs.reserve(xs.size());
  Vec h(hidden_dim_, 0.0);
  for (const Vec& x : xs) {
    assert(x.size() == input_dim_);
    StepCache c;
    c.x = x;
    c.h_prev = h;

    Vec az = Add(MatVec(wz_.value, x), MatVec(uz_.value, h));
    Vec ar = Add(MatVec(wr_.value, x), MatVec(ur_.value, h));
    for (size_t i = 0; i < hidden_dim_; ++i) {
      az[i] += bz_.value(0, i);
      ar[i] += br_.value(0, i);
    }
    c.z = Sigmoid(az);
    c.r = Sigmoid(ar);

    Vec rh = Mul(c.r, h);
    Vec ag = Add(MatVec(wh_.value, x), MatVec(uh_.value, rh));
    for (size_t i = 0; i < hidden_dim_; ++i) ag[i] += bh_.value(0, i);
    c.g = Tanh(ag);

    for (size_t i = 0; i < hidden_dim_; ++i) {
      h[i] = (1.0 - c.z[i]) * c.h_prev[i] + c.z[i] * c.g[i];
    }
    cache_.push_back(std::move(c));
    hs.push_back(h);
  }
  return hs;
}

std::vector<Vec> Gru::BackwardSequence(const std::vector<Vec>& dh_per_step) {
  const size_t steps = cache_.size();
  assert(dh_per_step.size() == steps);
  std::vector<Vec> dxs(steps, Vec(input_dim_, 0.0));
  Vec carry(hidden_dim_, 0.0);  // dL/dh_t flowing backwards

  for (size_t ti = steps; ti-- > 0;) {
    const StepCache& c = cache_[ti];
    Vec dh = Add(dh_per_step[ti], carry);

    // h_t = (1-z)*h_prev + z*g
    Vec dz(hidden_dim_), dg(hidden_dim_), dh_prev(hidden_dim_);
    for (size_t i = 0; i < hidden_dim_; ++i) {
      dz[i] = dh[i] * (c.g[i] - c.h_prev[i]);
      dg[i] = dh[i] * c.z[i];
      dh_prev[i] = dh[i] * (1.0 - c.z[i]);
    }

    // Candidate: g = tanh(Wh x + Uh (r*h_prev) + bh)
    Vec dag = Mul(dg, TanhGradFromOutput(c.g));
    AddOuter(wh_.grad, dag, c.x);
    Vec rh = Mul(c.r, c.h_prev);
    AddOuter(uh_.grad, dag, rh);
    for (size_t i = 0; i < hidden_dim_; ++i) bh_.grad(0, i) += dag[i];
    Vec drh = MatTVec(uh_.value, dag);
    Vec dr = Mul(drh, c.h_prev);
    AddInPlace(dh_prev, Mul(drh, c.r));
    Vec dx = MatTVec(wh_.value, dag);

    // Update gate: z = sigmoid(...)
    Vec daz = Mul(dz, SigmoidGradFromOutput(c.z));
    AddOuter(wz_.grad, daz, c.x);
    AddOuter(uz_.grad, daz, c.h_prev);
    for (size_t i = 0; i < hidden_dim_; ++i) bz_.grad(0, i) += daz[i];
    AddInPlace(dh_prev, MatTVec(uz_.value, daz));
    AddInPlace(dx, MatTVec(wz_.value, daz));

    // Reset gate: r = sigmoid(...)
    Vec dar = Mul(dr, SigmoidGradFromOutput(c.r));
    AddOuter(wr_.grad, dar, c.x);
    AddOuter(ur_.grad, dar, c.h_prev);
    for (size_t i = 0; i < hidden_dim_; ++i) br_.grad(0, i) += dar[i];
    AddInPlace(dh_prev, MatTVec(ur_.value, dar));
    AddInPlace(dx, MatTVec(wr_.value, dar));

    dxs[ti] = std::move(dx);
    carry = std::move(dh_prev);
  }
  return dxs;
}

}  // namespace nn
}  // namespace dbc
