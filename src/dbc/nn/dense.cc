#include "dbc/nn/dense.h"

namespace dbc {
namespace nn {

Vec Dense::Forward(const Vec& x) {
  cached_x_ = x;
  Vec y = MatVec(w_.value, x);
  for (size_t i = 0; i < y.size(); ++i) y[i] += b_.value(0, i);
  return y;
}

Vec Dense::Backward(const Vec& dy) { return BackwardWithInput(dy, cached_x_); }

Vec Dense::BackwardWithInput(const Vec& dy, const Vec& x) {
  AddOuter(w_.grad, dy, x);
  for (size_t i = 0; i < dy.size(); ++i) b_.grad(0, i) += dy[i];
  return MatTVec(w_.value, dy);
}

}  // namespace nn
}  // namespace dbc
