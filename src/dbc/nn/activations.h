// Element-wise activations and their derivatives.
#pragma once

#include "dbc/nn/mat.h"

namespace dbc {
namespace nn {

double SigmoidScalar(double x);

Vec Sigmoid(const Vec& x);
/// d/dx sigmoid given the *activated* value s: s * (1 - s).
Vec SigmoidGradFromOutput(const Vec& s);

Vec Tanh(const Vec& x);
/// d/dx tanh given the activated value t: 1 - t^2.
Vec TanhGradFromOutput(const Vec& t);

Vec Relu(const Vec& x);
/// 1 where the pre-activation was positive, else 0 (uses the output sign).
Vec ReluGradFromOutput(const Vec& y);

}  // namespace nn
}  // namespace dbc
