// Trainable parameter (value + gradient) and the Adam optimizer.
#pragma once

#include <vector>

#include "dbc/nn/mat.h"

namespace dbc {
namespace nn {

/// A trainable matrix with its gradient accumulator. Biases are 1-row Mats.
struct Param {
  Mat value;
  Mat grad;

  Param() = default;
  Param(size_t rows, size_t cols) : value(rows, cols), grad(rows, cols) {}
  explicit Param(Mat init)
      : value(std::move(init)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Adam optimizer over a set of registered parameters.
class Adam {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// Registers a parameter; the pointer must stay valid for the Adam's life.
  void Register(Param* p);

  /// Registers every parameter of a layer exposing Params().
  template <typename Layer>
  void RegisterLayer(Layer& layer) {
    for (Param* p : layer.Params()) Register(p);
  }

  /// Applies one Adam update using the accumulated gradients.
  void Step();

  /// Clears the gradients of all registered parameters.
  void ZeroGrad();

  /// Clips the global L2 norm of all gradients to `max_norm` (no-op if under).
  void ClipGradNorm(double max_norm);

 private:
  struct Slot {
    Param* param;
    Vec m;
    Vec v;
  };
  std::vector<Slot> slots_;
  double lr_, beta1_, beta2_, eps_;
  long step_ = 0;
};

}  // namespace nn
}  // namespace dbc
