#include "dbc/cloudsim/load_balancer.h"

#include <algorithm>
#include <cassert>

namespace dbc {

LoadBalancer::LoadBalancer(const LoadBalancerConfig& config, Rng rng) {
  assert(config.num_databases > 0);
  shares_.reserve(config.num_databases);
  for (size_t i = 0; i < config.num_databases; ++i) {
    shares_.emplace_back(1.0, config.imbalance_theta, config.imbalance_sigma,
                         rng.Fork(i + 1));
  }
}

std::vector<double> LoadBalancer::Split(double unit_rate) {
  const size_t n = shares_.size();
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::max(0.05, shares_[i].Step());
    total += weights[i];
  }
  for (double& w : weights) w /= total;

  if (skew_target_ >= 0) {
    // Redirect skew_fraction of everyone else's share to the target.
    const size_t target = static_cast<size_t>(skew_target_);
    double moved = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (i == target) continue;
      const double delta = weights[i] * skew_fraction_;
      weights[i] -= delta;
      moved += delta;
    }
    weights[target] += moved;
  }

  std::vector<double> rates(n);
  for (size_t i = 0; i < n; ++i) rates[i] = unit_rate * weights[i];
  return rates;
}

void LoadBalancer::SetSkew(size_t target, double skew_fraction) {
  assert(target < shares_.size());
  skew_target_ = static_cast<int>(target);
  skew_fraction_ = std::clamp(skew_fraction, 0.0, 1.0);
}

void LoadBalancer::ClearSkew() {
  skew_target_ = -1;
  skew_fraction_ = 0.0;
}

}  // namespace dbc
