#include "dbc/cloudsim/load_balancer.h"

#include <algorithm>
#include <cassert>

namespace dbc {

LoadBalancer::LoadBalancer(const LoadBalancerConfig& config, Rng rng) {
  assert(config.num_databases > 0);
  shares_.reserve(config.num_databases);
  for (size_t i = 0; i < config.num_databases; ++i) {
    shares_.emplace_back(1.0, config.imbalance_theta, config.imbalance_sigma,
                         rng.Fork(i + 1));
  }
  active_.assign(config.num_databases, 1);
  bias_.assign(config.num_databases, 1.0);
}

std::vector<double> LoadBalancer::Split(double unit_rate) {
  const size_t n = shares_.size();
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Inactive members still step their OU share so that the stream of
    // random draws (and therefore every other member's share) does not
    // depend on who is currently in the unit.
    const double share = std::max(0.05, shares_[i].Step());
    weights[i] = active_[i] ? share * std::max(0.0, bias_[i]) : 0.0;
    total += weights[i];
  }
  if (total <= 0.0) return std::vector<double>(n, 0.0);
  for (double& w : weights) w /= total;

  if (skew_target_ >= 0 && active_[static_cast<size_t>(skew_target_)]) {
    // Redirect skew_fraction of everyone else's share to the target.
    const size_t target = static_cast<size_t>(skew_target_);
    double moved = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (i == target) continue;
      const double delta = weights[i] * skew_fraction_;
      weights[i] -= delta;
      moved += delta;
    }
    weights[target] += moved;
  }

  std::vector<double> rates(n);
  for (size_t i = 0; i < n; ++i) rates[i] = unit_rate * weights[i];
  return rates;
}

void LoadBalancer::SetSkew(size_t target, double skew_fraction) {
  assert(target < shares_.size());
  skew_target_ = static_cast<int>(target);
  skew_fraction_ = std::clamp(skew_fraction, 0.0, 1.0);
}

void LoadBalancer::ClearSkew() {
  skew_target_ = -1;
  skew_fraction_ = 0.0;
}

void LoadBalancer::SetActive(size_t db, bool active) {
  assert(db < active_.size());
  active_[db] = active ? 1 : 0;
}

void LoadBalancer::SetBias(size_t db, double bias) {
  assert(db < bias_.size());
  bias_[db] = std::max(0.0, bias);
}

size_t LoadBalancer::active_count() const {
  size_t count = 0;
  for (uint8_t a : active_) count += a != 0;
  return count;
}

}  // namespace dbc
