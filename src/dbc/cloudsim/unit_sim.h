// Unit simulator: ties profile, load balancer, instance models, fluctuations,
// anomalies, and collection delays into a full UnitData trace.
#pragma once

#include <memory>

#include "dbc/cloudsim/anomaly.h"
#include "dbc/cloudsim/instance_model.h"
#include "dbc/cloudsim/load_balancer.h"
#include "dbc/cloudsim/profile.h"
#include "dbc/cloudsim/topology.h"
#include "dbc/cloudsim/unit_data.h"
#include "dbc/common/rng.h"

namespace dbc {

/// End-to-end configuration for simulating one unit.
struct UnitSimConfig {
  size_t num_databases = 5;  // one primary + four replicas (§IV-A-5)
  size_t ticks = 2000;       // points per KPI series (5s per point)
  LoadBalancerConfig lb;
  InstanceModelParams instance;
  AnomalyScheduleConfig anomalies;
  FluctuationConfig fluctuations;
  /// Maximum per-database collection delay in points (point-in-time delay of
  /// §II-D); each database draws a constant delay in [0, max].
  size_t max_collection_delay = 3;
  /// Per-tick multiplicative noise applied to the *unit* rate before the
  /// load balancer: every database sees the same fast request fluctuation.
  /// This is the fine-grained structure that makes same-KPI series correlate
  /// within short windows (the UKPIC carrier of §II-B).
  double shared_noise_sigma = 0.08;
  /// Disable anomaly injection entirely (for healthy-trace studies, Fig. 3).
  bool inject_anomalies = true;
  /// Disable the unlabeled temporal fluctuations (Fig. 5 ablations).
  bool inject_fluctuations = true;
  /// Membership churn schedule; only consulted when inject_topology is set.
  TopologyFaultConfig topology;
  /// Enable unit membership churn (replica crash/replace, scale-out joins,
  /// primary switchover, LB rebalancing). Off by default — the static
  /// topology stream is bit-identical to traces produced before this knob
  /// existed (churn draws from a separate RNG fork).
  bool inject_topology = false;
};

/// Simulates one unit driven by `profile`. The profile's Name() and
/// periodicity flag are recorded in the result.
UnitData SimulateUnit(const UnitSimConfig& config, WorkloadProfile& profile,
                      bool profile_is_periodic, Rng rng);

}  // namespace dbc
