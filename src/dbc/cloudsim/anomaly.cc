#include "dbc/cloudsim/anomaly.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "dbc/common/mathutil.h"

namespace dbc {

const std::string& AnomalyKindName(AnomalyKind kind) {
  static const std::array<std::string, kNumAnomalyKinds> kNames = {
      "spike",
      "level-shift",
      "concept-drift",
      "lb-skew",
      "capacity-fragmentation",
      "cpu-hog",
      "replication-stall",
  };
  return kNames[static_cast<size_t>(kind)];
}

namespace {

/// Duration range (ticks) per kind; spikes are short, drifts are long.
void DurationRange(AnomalyKind kind, size_t* lo, size_t* hi) {
  switch (kind) {
    case AnomalyKind::kSpike:
      *lo = 2;
      *hi = 6;
      return;
    case AnomalyKind::kLevelShift:
      *lo = 25;
      *hi = 90;
      return;
    case AnomalyKind::kConceptDrift:
      *lo = 60;
      *hi = 160;
      return;
    case AnomalyKind::kLoadBalanceSkew:
      *lo = 30;
      *hi = 120;
      return;
    case AnomalyKind::kCapacityFragmentation:
      *lo = 40;
      *hi = 140;
      return;
    case AnomalyKind::kCpuHog:
      *lo = 20;
      *hi = 80;
      return;
    case AnomalyKind::kReplicationStall:
      *lo = 15;
      *hi = 60;
      return;
  }
  *lo = 10;
  *hi = 40;
}

}  // namespace

std::vector<AnomalyEvent> ScheduleAnomalies(const AnomalyScheduleConfig& config,
                                            size_t num_dbs, size_t ticks,
                                            Rng& rng) {
  std::vector<AnomalyKind> kinds = config.kinds;
  if (kinds.empty()) {
    for (size_t i = 0; i < kNumAnomalyKinds; ++i) {
      kinds.push_back(static_cast<AnomalyKind>(i));
    }
  }
  std::vector<double> weights = config.kind_weights;
  if (weights.size() != kinds.size()) {
    weights.assign(kinds.size(), 1.0);
    for (size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == AnomalyKind::kSpike) weights[i] = 4.0;
    }
  }

  const double total_points = static_cast<double>(num_dbs * ticks);
  const double budget = config.target_ratio * total_points;

  std::vector<AnomalyEvent> events;
  // Per-database occupied intervals (with the min healthy gap) to avoid
  // overlapping or back-to-back events on one database.
  std::vector<std::vector<std::pair<size_t, size_t>>> busy(num_dbs);

  double spent = 0.0;
  size_t attempts = 0;
  const size_t max_attempts = 50 * (num_dbs * ticks / 100 + 10);
  while (spent < budget && attempts < max_attempts) {
    ++attempts;
    AnomalyEvent ev;
    ev.kind = kinds[rng.WeightedChoice(weights)];
    ev.db = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_dbs) - 1));
    size_t lo = 0, hi = 0;
    DurationRange(ev.kind, &lo, &hi);
    ev.duration = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
    if (config.head_clearance + ev.duration + 1 >= ticks) continue;
    ev.start = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.head_clearance),
                       static_cast<int64_t>(ticks - ev.duration - 1)));
    ev.magnitude = rng.Uniform(0.4, 1.0);

    // Reject overlaps (with gap) on the same database; LB skew also excludes
    // overlapping any other database's event (a unit-wide disturbance).
    const size_t gap = config.min_gap;
    const size_t lo_t = ev.start > gap ? ev.start - gap : 0;
    const size_t hi_t = ev.end() + gap;
    bool clash = false;
    for (size_t db = 0; db < num_dbs && !clash; ++db) {
      if (db != ev.db && ev.kind != AnomalyKind::kLoadBalanceSkew) continue;
      for (const auto& [b, e] : busy[db]) {
        if (lo_t < e && b < hi_t) {
          clash = true;
          break;
        }
      }
    }
    if (clash) continue;

    busy[ev.db].push_back({lo_t, hi_t});
    events.push_back(ev);
    spent += static_cast<double>(ev.duration);
  }
  std::sort(events.begin(), events.end(),
            [](const AnomalyEvent& a, const AnomalyEvent& b) {
              return a.start < b.start;
            });
  return events;
}

const AnomalyEvent* DominantEventInWindow(
    const std::vector<AnomalyEvent>& events, size_t begin, size_t end) {
  const AnomalyEvent* best = nullptr;
  size_t best_overlap = 0;
  for (const AnomalyEvent& ev : events) {
    const size_t lo = std::max(begin, ev.start);
    const size_t hi = std::min(end, ev.end());
    const size_t overlap = hi > lo ? hi - lo : 0;
    if (overlap == 0) continue;
    if (best == nullptr || overlap > best_overlap ||
        (overlap == best_overlap &&
         (ev.start < best->start ||
          (ev.start == best->start && ev.db < best->db)))) {
      best = &ev;
      best_overlap = overlap;
    }
  }
  return best;
}

AnomalyInjector::AnomalyInjector(std::vector<AnomalyEvent> events,
                                 size_t num_dbs, Rng rng)
    : events_(std::move(events)) {
  (void)num_dbs;
  states_.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    const AnomalyEvent& ev = events_[i];
    // The foreign signal is the event's own dynamics: a slow log-domain OU
    // regime plus fast per-tick noise. It is what the affected KPIs follow
    // instead of the unit workload.
    const double sigma = 0.10 + 0.25 * ev.magnitude;
    EventState st{ev, OuProcess(0.0, 0.05, sigma, rng.Fork(2 * i + 1)),
                  rng.Fork(2 * i + 2), rng.Bernoulli(0.5) ? 1.0 : -1.0};
    states_.push_back(std::move(st));
  }
}

KpiEffect AnomalyInjector::EffectFor(size_t db, size_t t) {
  KpiEffect effect;
  for (EventState& st : states_) {
    const AnomalyEvent& ev = st.event;
    if (ev.db != db || !ev.ActiveAt(t)) continue;
    // Shared pieces: progress through the event and the independent foreign
    // signal (slow regime x fast per-tick noise) the anomaly follows.
    const double progress = static_cast<double>(t - ev.start) /
                            static_cast<double>(std::max<size_t>(1, ev.duration));
    const double foreign =
        std::exp(st.foreign.Step() + 0.25 * st.noise.Normal());
    const double m = ev.magnitude;
    KpiEffect e;

    // Helper: route `w` of the KPI to the foreign signal at `level` times
    // the KPI's healthy running mean.
    auto blend = [&e](Kpi kpi, double w, double level) {
      e.blend_w[KpiIndex(kpi)] = Clamp(w, 0.0, 1.0);
      e.blend_factor[KpiIndex(kpi)] = std::max(0.0, level);
    };
    static constexpr Kpi kThroughputPath[] = {
        Kpi::kRequestsPerSecond,   Kpi::kTotalRequests,
        Kpi::kInnodbRowsRead,      Kpi::kBufferPoolReadRequests,
        Kpi::kTransactionsPerSecond, Kpi::kCpuUtilization};
    static constexpr Kpi kWritePath[] = {
        Kpi::kComInsert,         Kpi::kComUpdate,
        Kpi::kInnodbRowsInserted, Kpi::kInnodbRowsUpdated,
        Kpi::kInnodbRowsDeleted, Kpi::kInnodbDataWrites,
        Kpi::kInnodbDataWritten};

    switch (ev.kind) {
      case AnomalyKind::kSpike: {
        // Short, violent multiplier on the throughput path: the spike itself
        // dominates the window's normalized shape.
        const double gain =
            st.direction > 0 ? 1.0 + 2.5 * m * foreign
                             : 1.0 / (1.0 + 2.0 * m * foreign);
        for (Kpi kpi : kThroughputPath) e.mult[KpiIndex(kpi)] = gain;
        break;
      }
      case AnomalyKind::kLevelShift: {
        // Jump to a new regime with its own dynamics: most KPIs follow the
        // foreign signal at a shifted level instead of the unit workload.
        const double level =
            st.direction > 0 ? 1.0 + 1.2 * m : std::max(0.1, 1.0 - 0.7 * m);
        const double w = 0.7 + 0.25 * m;
        for (size_t i = 0; i < kNumKpis; ++i) {
          if (i == KpiIndex(Kpi::kRealCapacity)) continue;
          e.blend_w[i] = w;
          e.blend_factor[i] = level * foreign;
        }
        break;
      }
      case AnomalyKind::kConceptDrift: {
        // Gradually hand the KPIs over to the foreign regime.
        const double w = progress * (0.75 + 0.25 * m);
        for (size_t i = 0; i < kNumKpis; ++i) {
          if (i == KpiIndex(Kpi::kRealCapacity)) continue;
          e.blend_w[i] = w;
          e.blend_factor[i] = (1.0 + 0.8 * m) * foreign;
        }
        break;
      }
      case AnomalyKind::kLoadBalanceSkew: {
        // The rate redirection itself is realized through the load balancer
        // (SkewAt). A defective strategy maps the *expensive* statements to
        // the target (Fig. 4), so its cost-path KPIs follow the rogue
        // statement stream rather than the balanced workload.
        e.cpu_cost_mult = 1.0 + 1.5 * m * foreign;
        blend(Kpi::kCpuUtilization, 0.6 + 0.35 * m, (1.0 + m) * foreign);
        blend(Kpi::kInnodbRowsRead, 0.6 + 0.35 * m, (1.0 + m) * foreign);
        blend(Kpi::kBufferPoolReadRequests, 0.6 + 0.35 * m,
              (1.0 + m) * foreign);
        break;
      }
      case AnomalyKind::kCapacityFragmentation: {
        // Churny deletes+inserts with dead space left behind (Fig. 12): the
        // churn counters follow the rogue maintenance job.
        e.reclaim = Clamp(1.0 - 0.9 * m, 0.05, 1.0);
        e.churn_rows_mult = 1.0 + 1.5 * m;  // the job really moves the rows
        const double w = 0.65 + 0.3 * m;
        blend(Kpi::kComInsert, w, (1.5 + m) * foreign);
        blend(Kpi::kInnodbRowsInserted, w, (1.5 + m) * foreign);
        blend(Kpi::kInnodbRowsDeleted, w, (1.5 + m) * foreign);
        blend(Kpi::kInnodbDataWrites, w, (1.2 + m) * foreign);
        blend(Kpi::kInnodbDataWritten, w, (1.2 + m) * foreign);
        break;
      }
      case AnomalyKind::kCpuHog: {
        // Same request count, far heavier requests (Fig. 13): CPU and the
        // read path are dominated by the rogue tasks' own demand curve.
        e.cpu_cost_mult = 1.0 + 3.0 * m * foreign;
        blend(Kpi::kCpuUtilization, 0.65 + 0.3 * m, (1.3 + m) * foreign);
        blend(Kpi::kInnodbRowsRead, 0.65 + 0.3 * m, (1.5 + m) * foreign);
        blend(Kpi::kBufferPoolReadRequests, 0.65 + 0.3 * m,
              (1.5 + m) * foreign);
        break;
      }
      case AnomalyKind::kReplicationStall: {
        // Apply thread stalls, then catches up: write-path counters sit at a
        // near-zero floor for the first 70% of the event and replay the
        // backlog afterwards.
        const bool stalled = progress < 0.7;
        for (Kpi kpi : kWritePath) {
          if (stalled) {
            blend(kpi, 0.85 + 0.1 * m, 0.05);
          } else {
            blend(kpi, 0.7, (1.5 + m) * foreign);
          }
        }
        break;
      }
    }
    effect.Combine(e);
  }
  return effect;
}

bool AnomalyInjector::SkewAt(size_t t, size_t* target, double* fraction) const {
  for (const EventState& st : states_) {
    const AnomalyEvent& ev = st.event;
    if (ev.kind == AnomalyKind::kLoadBalanceSkew && ev.ActiveAt(t)) {
      *target = ev.db;
      *fraction = Clamp(0.3 + 0.6 * ev.magnitude, 0.0, 0.95);
      return true;
    }
  }
  return false;
}

bool AnomalyInjector::LabelAt(size_t db, size_t t) const {
  for (const AnomalyEvent& ev : events_) {
    if (ev.db == db && ev.ActiveAt(t)) return true;
  }
  return false;
}

FluctuationProcess::FluctuationProcess(const FluctuationConfig& config, Rng rng)
    : config_(config), rng_(rng) {}

KpiEffect FluctuationProcess::Step() {
  if (remaining_ > 0) {
    --remaining_;
    return active_;
  }
  if (!rng_.Bernoulli(config_.arrival_rate)) return KpiEffect();

  // Start a new fluctuation: a small multiplier on a few random KPIs.
  active_ = KpiEffect();
  const size_t touched = static_cast<size_t>(
      rng_.UniformInt(1, static_cast<int64_t>(config_.max_kpis)));
  for (size_t i = 0; i < touched; ++i) {
    const size_t kpi = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(kNumKpis) - 1));
    if (kpi == KpiIndex(Kpi::kRealCapacity)) continue;
    const double rel = rng_.Uniform(0.08, config_.max_relative);
    active_.mult[kpi] = rng_.Bernoulli(0.5) ? 1.0 + rel : 1.0 - rel;
  }
  remaining_ = static_cast<size_t>(
      rng_.UniformInt(static_cast<int64_t>(config_.min_duration),
                      static_cast<int64_t>(config_.max_duration)));
  return active_;
}

}  // namespace dbc
