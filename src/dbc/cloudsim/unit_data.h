// The materialized output of simulating one database unit: per-database KPI
// matrices plus ground-truth point labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dbc/cloudsim/anomaly.h"
#include "dbc/cloudsim/instance_model.h"
#include "dbc/cloudsim/topology.h"
#include "dbc/storage/series_view.h"
#include "dbc/ts/series.h"

namespace dbc {

/// KPI traces and labels for one unit over a simulated interval.
struct UnitData {
  std::string name;
  /// Unit workload family ("periodic", "irregular", "sysbench-I", ...).
  std::string profile;
  /// True when the unit's workload is periodic (the I/II split of §IV-A-2).
  bool periodic = false;
  /// Role per database (index 0 is the primary in this library).
  std::vector<DbRole> roles;
  /// kpis[db] holds kNumKpis rows of equal length (one per Kpi, enum order).
  std::vector<MultiSeries> kpis;
  /// labels[db][t] == 1 when database `db` is inside an injected anomaly.
  std::vector<std::vector<uint8_t>> labels;
  /// The injected schedule (ground truth for case studies / debugging).
  std::vector<AnomalyEvent> events;
  /// Dynamic membership: present[db][t] != 0 when `db` is a unit member with
  /// a live collector feed at tick t. Empty = every database is always
  /// present (the static-topology case).
  std::vector<std::vector<uint8_t>> present;
  /// Per-tick primary id. Empty = `roles` holds throughout (index 0).
  std::vector<size_t> primary;
  /// The injected membership churn schedule (ground truth).
  std::vector<TopologyEvent> topology;

  size_t num_dbs() const { return kpis.size(); }
  size_t length() const { return kpis.empty() ? 0 : kpis.front().length(); }

  /// True when `db` is a member with a live feed at tick `t`.
  bool PresentAt(size_t db, size_t t) const {
    if (present.empty()) return true;
    return db < present.size() && t < present[db].size() &&
           present[db][t] != 0;
  }

  /// The primary database id at tick `t`.
  size_t PrimaryAt(size_t t) const {
    return t < primary.size() ? primary[t] : 0;
  }

  /// Live member count at tick `t`.
  size_t MembersAt(size_t t) const;

  /// Convenience: the series of `kpi` for database `db`.
  const Series& kpi(size_t db, Kpi k) const {
    return kpis[db].row(KpiIndex(k));
  }

  /// Zero-copy stride-1 view of one series — the same shape the columnar
  /// store's hot columns hand the kernels, so offline traces and the online
  /// store feed identical entry points. No validity mask (simulated traces
  /// are fully observed).
  SeriesView view(size_t db, Kpi k) const {
    const std::vector<double>& v = kpi(db, k).values();
    return {v.data(), v.size(), nullptr, 0};
  }

  /// Count of labeled abnormal (db, t) points.
  size_t AbnormalPoints() const;

  /// Returns a copy with every series and label truncated to [begin, end).
  UnitData Slice(size_t begin, size_t end) const;
};

}  // namespace dbc
