#include "dbc/cloudsim/profile.h"

#include <algorithm>
#include <cmath>

#include "dbc/common/mathutil.h"

namespace dbc {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double OuProcess::Step() {
  state_ += theta_ * (mean_ - state_) + sigma_ * rng_.Normal();
  return state_;
}

namespace {

/// Diurnal-style profile: base + sinusoid + second harmonic, multiplied by a
/// slowly varying OU factor. The OLTP mix drifts mildly with the cycle phase
/// (e-commerce style: more writes near the peak).
class PeriodicProfile final : public WorkloadProfile {
 public:
  PeriodicProfile(const PeriodicProfileParams& params, Rng rng)
      : params_(params),
        noise_(1.0, 0.08, params.noise_sigma, rng.Fork(1)) {}

  double RateAt(size_t t) override {
    const double phase =
        2.0 * kPi * static_cast<double>(t) / static_cast<double>(params_.period);
    double rate = params_.base_rate +
                  params_.amplitude * 0.5 * (1.0 + std::sin(phase)) +
                  params_.amplitude * params_.second_harmonic * 0.5 *
                      (1.0 + std::sin(2.0 * phase + 0.7));
    rate *= Clamp(noise_.Step(), 0.7, 1.3);
    last_phase_ = phase;
    return std::max(0.0, rate);
  }

  TransactionMix MixAt(size_t /*t*/) override {
    TransactionMix mix;
    const double peak = 0.5 * (1.0 + std::sin(last_phase_));  // 0..1
    mix.read = 0.72 - 0.08 * peak;
    mix.insert = 0.08 + 0.05 * peak;
    mix.update = 0.14 + 0.03 * peak;
    mix.remove = 0.04;
    return mix;
  }

  std::string Name() const override { return "periodic"; }

 private:
  PeriodicProfileParams params_;
  OuProcess noise_;
  double last_phase_ = 0.0;
};

/// Bursty mean-reverting profile with plateau shifts: the "extensive
/// irregular time series" of §I.
class IrregularProfile final : public WorkloadProfile {
 public:
  IrregularProfile(const IrregularProfileParams& params, Rng rng)
      : params_(params),
        rng_(rng.Fork(1)),
        log_noise_(0.0, 0.02, params.walk_sigma, rng.Fork(2)),
        mix_noise_(0.0, 0.05, 0.02, rng.Fork(3)) {
    plateau_ = params_.base_rate;
  }

  double RateAt(size_t /*t*/) override {
    // Plateau shifts: the tenant re-deploys / changes traffic class.
    if (rng_.Bernoulli(params_.shift_rate)) {
      plateau_ *= rng_.Uniform(0.6, 1.6);
      plateau_ = Clamp(plateau_, 0.2 * params_.base_rate,
                       4.0 * params_.base_rate);
    }
    // Burst arrivals decay geometrically.
    if (rng_.Bernoulli(params_.burst_rate)) {
      burst_ = std::max(burst_, rng_.Uniform(0.5, 1.0) * params_.burst_gain);
    }
    burst_ *= params_.burst_decay;
    const double wobble = std::exp(log_noise_.Step());
    return std::max(0.0, plateau_ * wobble * (1.0 + burst_));
  }

  TransactionMix MixAt(size_t /*t*/) override {
    TransactionMix mix;
    // The drift trades reads against inserts so the class fractions always
    // sum below 1.
    const double drift = Clamp(mix_noise_.Step(), -0.08, 0.08);
    mix.read = 0.68 + drift;
    mix.insert = 0.1 - drift;
    mix.update = 0.16;
    mix.remove = 0.05;
    return mix;
  }

  std::string Name() const override { return "irregular"; }

 private:
  IrregularProfileParams params_;
  Rng rng_;
  OuProcess log_noise_;
  OuProcess mix_noise_;
  double plateau_ = 0.0;
  double burst_ = 0.0;
};

/// Sysbench-shaped profile: the rate tracks the active thread count through
/// a near-linear scaling law with contention falloff; threads change per
/// "run" (Table IV Time column) — cycling deterministically for Sysbench II,
/// resampled randomly for Sysbench I.
class SysbenchProfile final : public WorkloadProfile {
 public:
  SysbenchProfile(const SysbenchParams& params, Rng rng)
      : params_(params),
        rng_(rng.Fork(1)),
        noise_(1.0, 0.1, 0.03, rng.Fork(2)) {
    // One Table IV "run" lasts time_minutes at the 5s collection interval.
    run_ticks_ = std::max<size_t>(
        4, static_cast<size_t>(params.time_minutes * 60.0 / 5.0));
    threads_ = params.threads;
  }

  double RateAt(size_t t) override {
    if (t >= next_change_) {
      AdvanceRun();
      next_change_ = t + run_ticks_;
    }
    // Throughput law: ~linear in threads with saturation from row contention
    // (more tables = less contention).
    const double contention =
        1.0 + static_cast<double>(threads_) /
                  (8.0 * static_cast<double>(std::max(1, params_.tables)));
    const double per_thread = 550.0 / contention;
    const double rate = per_thread * static_cast<double>(threads_);
    return std::max(0.0, rate * Clamp(noise_.Step(), 0.85, 1.15));
  }

  TransactionMix MixAt(size_t /*t*/) override {
    // oltp_read_write: 14 reads + 2 updates + 1 delete + 1 insert per tx.
    TransactionMix mix;
    mix.read = 14.0 / 18.0;
    mix.update = 2.0 / 18.0;
    mix.remove = 1.0 / 18.0;
    mix.insert = 1.0 / 18.0;
    return mix;
  }

  std::string Name() const override {
    return params_.periodic ? "sysbench-II" : "sysbench-I";
  }

 private:
  void AdvanceRun() {
    if (params_.periodic) {
      // Sysbench II: threads cycle 4-8-16-32.
      static constexpr int kCycle[] = {4, 8, 16, 32};
      cycle_pos_ = (cycle_pos_ + 1) % 4;
      threads_ = kCycle[cycle_pos_];
    } else {
      // Sysbench I: resample from the Table IV irregular space.
      threads_ = static_cast<int>(rng_.UniformInt(4, 64));
      params_.tables = static_cast<int>(rng_.UniformInt(5, 20));
      run_ticks_ = std::max<size_t>(
          4, static_cast<size_t>(rng_.Uniform(0.5, 1.0) * 60.0 / 5.0));
    }
  }

  SysbenchParams params_;
  Rng rng_;
  OuProcess noise_;
  size_t run_ticks_;
  size_t next_change_ = 0;
  int threads_;
  int cycle_pos_ = 0;
};

/// TPC-C-shaped profile: warehouse-limited throughput and the canonical
/// 45/43/4/4/4 transaction mix mapped onto statement classes.
class TpccProfile final : public WorkloadProfile {
 public:
  TpccProfile(const TpccParams& params, Rng rng)
      : params_(params),
        rng_(rng.Fork(1)),
        noise_(1.0, 0.1, 0.04, rng.Fork(2)) {
    run_ticks_ = std::max<size_t>(
        4, static_cast<size_t>(params.time_minutes * 60.0 / 5.0));
    warmup_ticks_ = static_cast<size_t>(params.warmup_minutes * 60.0 / 5.0);
    threads_ = params.threads;
  }

  double RateAt(size_t t) override {
    if (t >= next_change_) {
      AdvanceRun();
      next_change_ = t + run_ticks_;
    }
    // Warmup ramps the buffer pool: early ticks of each run are slower.
    const size_t in_run = t - (next_change_ - run_ticks_);
    const double warm =
        warmup_ticks_ == 0
            ? 1.0
            : std::min(1.0, 0.5 + 0.5 * static_cast<double>(in_run) /
                                      static_cast<double>(warmup_ticks_));
    const double wh_cap = 120.0 * static_cast<double>(params_.warehouses);
    const double thread_rate = 180.0 * static_cast<double>(threads_);
    const double rate = std::min(wh_cap, thread_rate) * warm;
    return std::max(0.0, rate * Clamp(noise_.Step(), 0.85, 1.15));
  }

  TransactionMix MixAt(size_t /*t*/) override {
    // NewOrder 45% (insert heavy), Payment 43% (update heavy), OrderStatus /
    // Delivery / StockLevel 4% each.
    TransactionMix mix;
    mix.read = 0.35;
    mix.insert = 0.3;
    mix.update = 0.3;
    mix.remove = 0.04;
    return mix;
  }

  std::string Name() const override {
    return params_.periodic ? "tpcc-II" : "tpcc-I";
  }

 private:
  void AdvanceRun() {
    if (params_.periodic) {
      static constexpr int kCycle[] = {4, 8, 16, 24};
      cycle_pos_ = (cycle_pos_ + 1) % 4;
      threads_ = kCycle[cycle_pos_];
    } else {
      threads_ = static_cast<int>(rng_.UniformInt(4, 24));
      params_.warehouses = static_cast<int>(rng_.UniformInt(5, 20));
      run_ticks_ = std::max<size_t>(
          4, static_cast<size_t>(rng_.Uniform(0.5, 1.0) * 60.0 / 5.0));
    }
  }

  TpccParams params_;
  Rng rng_;
  OuProcess noise_;
  size_t run_ticks_;
  size_t warmup_ticks_;
  size_t next_change_ = 0;
  int threads_;
  int cycle_pos_ = 0;
};

}  // namespace

std::unique_ptr<WorkloadProfile> MakePeriodicProfile(
    const PeriodicProfileParams& params, Rng rng) {
  return std::make_unique<PeriodicProfile>(params, rng);
}

std::unique_ptr<WorkloadProfile> MakeIrregularProfile(
    const IrregularProfileParams& params, Rng rng) {
  return std::make_unique<IrregularProfile>(params, rng);
}

std::unique_ptr<WorkloadProfile> MakeSysbenchProfile(
    const SysbenchParams& params, Rng rng) {
  return std::make_unique<SysbenchProfile>(params, rng);
}

std::unique_ptr<WorkloadProfile> MakeTpccProfile(const TpccParams& params,
                                                 Rng rng) {
  return std::make_unique<TpccProfile>(params, rng);
}

SysbenchParams SampleSysbenchParams(bool periodic, Rng& rng) {
  SysbenchParams p;
  p.periodic = periodic;
  p.items = 100000;
  if (periodic) {
    // Sysbench II row of Table IV.
    p.tables = 10;
    p.threads = 4;  // cycle start; the profile cycles 4-8-16-32
    p.time_minutes = 0.5;
  } else {
    // Sysbench I row.
    p.tables = static_cast<int>(rng.UniformInt(5, 20));
    p.threads = static_cast<int>(rng.UniformInt(4, 64));
    p.time_minutes = rng.Uniform(0.5, 1.0);
  }
  return p;
}

TpccParams SampleTpccParams(bool periodic, Rng& rng) {
  TpccParams p;
  p.periodic = periodic;
  if (periodic) {
    // TPCC II row of Table IV.
    p.warehouses = 10;
    p.threads = 4;  // cycles 4-8-16-24
    p.warmup_minutes = 0.5;
    p.time_minutes = 0.5;
  } else {
    // TPCC I row.
    p.warehouses = static_cast<int>(rng.UniformInt(5, 20));
    p.threads = static_cast<int>(rng.UniformInt(4, 24));
    p.warmup_minutes = rng.Uniform(0.5, 1.0);
    p.time_minutes = rng.Uniform(0.5, 1.0);
  }
  return p;
}

}  // namespace dbc
