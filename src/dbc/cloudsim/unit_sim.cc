#include "dbc/cloudsim/unit_sim.h"

#include <cassert>
#include <cmath>

#include "dbc/ts/lag.h"

namespace dbc {

UnitData SimulateUnit(const UnitSimConfig& config, WorkloadProfile& profile,
                      bool profile_is_periodic, Rng rng) {
  const size_t n0 = config.num_databases;
  const size_t ticks = config.ticks;
  assert(n0 > 0 && ticks > 0);

  // Membership churn schedule. Drawn from its own fork so that with
  // inject_topology off the remaining random streams — and therefore the
  // whole trace — are bit-identical to the static-topology simulator.
  std::vector<TopologyEvent> topology;
  if (config.inject_topology) {
    Rng topo_rng = rng.Fork(6);
    topology = ScheduleTopologyFaults(config.topology, n0, ticks, topo_rng);
  }
  // Total database slots ever used: initial members plus one per join.
  const size_t n = TopologySlotCount(topology, n0);

  // Membership interval [join, depart) per slot, and per-tick primary id.
  std::vector<size_t> join_tick(n, 0);
  std::vector<size_t> depart_tick(n, ticks);
  for (size_t db = n0; db < n; ++db) join_tick[db] = ticks;
  std::vector<size_t> primary_at(ticks, 0);
  {
    size_t primary = 0;
    size_t next = 0;  // topology is start-ordered
    for (size_t t = 0; t < ticks; ++t) {
      while (next < topology.size() && topology[next].start <= t) {
        const TopologyEvent& ev = topology[next++];
        switch (ev.kind) {
          case TopologyEventKind::kReplicaCrash:
            depart_tick[ev.db] = ev.start;
            break;
          case TopologyEventKind::kReplicaJoin:
            join_tick[ev.db] = ev.start;
            break;
          case TopologyEventKind::kPrimarySwitchover:
            primary = ev.db;
            break;
          case TopologyEventKind::kLbRebalance:
            break;
        }
      }
      primary_at[t] = primary;
    }
  }

  LoadBalancerConfig lb_config = config.lb;
  lb_config.num_databases = n;
  LoadBalancer lb(lb_config, rng.Fork(1));
  for (size_t db = n0; db < n; ++db) lb.SetActive(db, false);

  std::vector<InstanceModel> instances;
  instances.reserve(n);
  for (size_t db = 0; db < n; ++db) {
    instances.emplace_back(db == 0 ? DbRole::kPrimary : DbRole::kReplica,
                           config.instance, rng.Fork(100 + db));
  }

  std::vector<AnomalyEvent> schedule;
  if (config.inject_anomalies) {
    Rng sched_rng = rng.Fork(2);
    // Anomalies target the initial cohort (n0, not n): the schedule is then
    // bit-identical to the static-topology run with the same seed, and churn
    // only *removes* events (membership filtering below) instead of
    // reshuffling the ground truth — clean vs churned runs stay paired.
    schedule = ScheduleAnomalies(config.anomalies, n0, ticks, sched_rng);
    // An absent database cannot be anomalous: keep only events that fall
    // entirely within the target's membership interval.
    if (!topology.empty()) {
      std::vector<AnomalyEvent> kept;
      for (const AnomalyEvent& ev : schedule) {
        if (ev.start >= join_tick[ev.db] && ev.end() <= depart_tick[ev.db]) {
          kept.push_back(ev);
        }
      }
      schedule.swap(kept);
    }
  }
  AnomalyInjector injector(schedule, n, rng.Fork(3));

  std::vector<FluctuationProcess> fluctuations;
  for (size_t db = 0; db < n; ++db) {
    fluctuations.emplace_back(config.fluctuations, rng.Fork(200 + db));
  }

  // Raw per-db per-kpi values.
  std::vector<std::vector<std::vector<double>>> raw(
      n, std::vector<std::vector<double>>(kNumKpis));
  for (auto& db_rows : raw) {
    for (auto& row : db_rows) row.reserve(ticks);
  }
  std::vector<std::vector<uint8_t>> labels(n, std::vector<uint8_t>(ticks, 0));
  std::vector<std::vector<uint8_t>> present(n,
                                            std::vector<uint8_t>(ticks, 0));

  Rng shared_rng = rng.Fork(5);
  for (size_t t = 0; t < ticks; ++t) {
    double unit_rate = profile.RateAt(t);
    if (config.shared_noise_sigma > 0.0) {
      unit_rate *=
          std::max(0.05, 1.0 + config.shared_noise_sigma * shared_rng.Normal());
    }
    const TransactionMix mix = profile.MixAt(t);

    // Apply membership/role changes and the transient weight effects of
    // in-flight topology events.
    for (const TopologyEvent& ev : topology) {
      if (ev.start > t) break;
      switch (ev.kind) {
        case TopologyEventKind::kReplicaCrash:
          if (ev.start == t) lb.SetActive(ev.db, false);
          break;
        case TopologyEventKind::kReplicaJoin:
          if (ev.start == t) lb.SetActive(ev.db, true);
          if (t >= ev.start && t < ev.end()) {
            // Warm-up ramp: the joiner's traffic share climbs to full weight.
            lb.SetBias(ev.db, static_cast<double>(t - ev.start + 1) /
                                  static_cast<double>(ev.duration + 1));
          } else if (t == ev.end()) {
            lb.SetBias(ev.db, 1.0);
          }
          break;
        case TopologyEventKind::kPrimarySwitchover:
          if (ev.start == t) {
            instances[ev.peer].SetRole(DbRole::kReplica);
            instances[ev.db].SetRole(DbRole::kPrimary);
          }
          // Planned failover: a brief dip correlated across every member.
          if (ev.ActiveAt(t)) unit_rate *= (1.0 - ev.magnitude);
          break;
        case TopologyEventKind::kLbRebalance:
          if (t >= ev.start && t < ev.end()) {
            // Triangular shift from `peer` to `db`, peaking mid-event.
            const double u = static_cast<double>(t - ev.start) /
                             static_cast<double>(ev.duration);
            const double f = ev.magnitude * (1.0 - std::abs(2.0 * u - 1.0));
            lb.SetBias(ev.db, 1.0 + f);
            lb.SetBias(ev.peer, std::max(0.0, 1.0 - f));
          } else if (t == ev.end()) {
            lb.SetBias(ev.db, 1.0);
            lb.SetBias(ev.peer, 1.0);
          }
          break;
      }
    }

    size_t skew_target = 0;
    double skew_fraction = 0.0;
    if (injector.SkewAt(t, &skew_target, &skew_fraction)) {
      lb.SetSkew(skew_target, skew_fraction);
    } else {
      lb.ClearSkew();
    }
    const std::vector<double> rates = lb.Split(unit_rate);

    for (size_t db = 0; db < n; ++db) {
      if (t < join_tick[db] || t >= depart_tick[db]) {
        // Not a member: no feed, no label, flat zero placeholder values.
        for (size_t k = 0; k < kNumKpis; ++k) raw[db][k].push_back(0.0);
        continue;
      }
      present[db][t] = 1;
      KpiEffect effect = injector.EffectFor(db, t);
      if (config.inject_fluctuations) {
        effect.Combine(fluctuations[db].Step());
      }
      const auto kpi = instances[db].Tick(rates[db], mix, effect);
      for (size_t k = 0; k < kNumKpis; ++k) raw[db][k].push_back(kpi[k]);
      labels[db][t] = injector.LabelAt(db, t) ? 1 : 0;
    }
  }

  // Collection delays: each database's measurements arrive `delay` points
  // late (the shift the KCD lag scan must absorb). The presence mask shifts
  // with the values — a delayed feed also appears and disappears late.
  Rng delay_rng = rng.Fork(4);
  UnitData out;
  out.profile = profile.Name();
  out.periodic = profile_is_periodic;
  out.roles.reserve(n);
  out.kpis.reserve(n);
  for (size_t db = 0; db < n; ++db) {
    const int delay =
        config.max_collection_delay == 0
            ? 0
            : static_cast<int>(delay_rng.UniformInt(
                  0, static_cast<int64_t>(config.max_collection_delay)));
    MultiSeries ms;
    for (size_t k = 0; k < kNumKpis; ++k) {
      Series s(std::move(raw[db][k]));
      if (delay > 0) s = ShiftEdgeFill(s, delay);
      ms.Add(KpiName(static_cast<Kpi>(k)), std::move(s));
    }
    if (delay > 0 && config.inject_topology) {
      auto& p = present[db];
      const uint8_t head = p.front();
      p.insert(p.begin(), static_cast<size_t>(delay), head);
      p.resize(ticks);
    }
    out.roles.push_back(db == 0 ? DbRole::kPrimary : DbRole::kReplica);
    out.kpis.push_back(std::move(ms));
  }
  out.labels = std::move(labels);
  out.events = schedule;
  if (config.inject_topology) {
    out.present = std::move(present);
    out.primary = std::move(primary_at);
    out.topology = std::move(topology);
  }
  return out;
}

}  // namespace dbc
