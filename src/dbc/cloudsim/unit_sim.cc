#include "dbc/cloudsim/unit_sim.h"

#include <cassert>

#include "dbc/ts/lag.h"

namespace dbc {

UnitData SimulateUnit(const UnitSimConfig& config, WorkloadProfile& profile,
                      bool profile_is_periodic, Rng rng) {
  const size_t n = config.num_databases;
  const size_t ticks = config.ticks;
  assert(n > 0 && ticks > 0);

  LoadBalancerConfig lb_config = config.lb;
  lb_config.num_databases = n;
  LoadBalancer lb(lb_config, rng.Fork(1));

  std::vector<InstanceModel> instances;
  instances.reserve(n);
  for (size_t db = 0; db < n; ++db) {
    instances.emplace_back(db == 0 ? DbRole::kPrimary : DbRole::kReplica,
                           config.instance, rng.Fork(100 + db));
  }

  std::vector<AnomalyEvent> schedule;
  if (config.inject_anomalies) {
    Rng sched_rng = rng.Fork(2);
    schedule = ScheduleAnomalies(config.anomalies, n, ticks, sched_rng);
  }
  AnomalyInjector injector(schedule, n, rng.Fork(3));

  std::vector<FluctuationProcess> fluctuations;
  for (size_t db = 0; db < n; ++db) {
    fluctuations.emplace_back(config.fluctuations, rng.Fork(200 + db));
  }

  // Raw per-db per-kpi values.
  std::vector<std::vector<std::vector<double>>> raw(
      n, std::vector<std::vector<double>>(kNumKpis));
  for (auto& db_rows : raw) {
    for (auto& row : db_rows) row.reserve(ticks);
  }
  std::vector<std::vector<uint8_t>> labels(n, std::vector<uint8_t>(ticks, 0));

  Rng shared_rng = rng.Fork(5);
  for (size_t t = 0; t < ticks; ++t) {
    double unit_rate = profile.RateAt(t);
    if (config.shared_noise_sigma > 0.0) {
      unit_rate *=
          std::max(0.05, 1.0 + config.shared_noise_sigma * shared_rng.Normal());
    }
    const TransactionMix mix = profile.MixAt(t);

    size_t skew_target = 0;
    double skew_fraction = 0.0;
    if (injector.SkewAt(t, &skew_target, &skew_fraction)) {
      lb.SetSkew(skew_target, skew_fraction);
    } else {
      lb.ClearSkew();
    }
    const std::vector<double> rates = lb.Split(unit_rate);

    for (size_t db = 0; db < n; ++db) {
      KpiEffect effect = injector.EffectFor(db, t);
      if (config.inject_fluctuations) {
        effect.Combine(fluctuations[db].Step());
      }
      const auto kpi = instances[db].Tick(rates[db], mix, effect);
      for (size_t k = 0; k < kNumKpis; ++k) raw[db][k].push_back(kpi[k]);
      labels[db][t] = injector.LabelAt(db, t) ? 1 : 0;
    }
  }

  // Collection delays: each database's measurements arrive `delay` points
  // late (the shift the KCD lag scan must absorb).
  Rng delay_rng = rng.Fork(4);
  UnitData out;
  out.profile = profile.Name();
  out.periodic = profile_is_periodic;
  out.roles.reserve(n);
  out.kpis.reserve(n);
  for (size_t db = 0; db < n; ++db) {
    const int delay =
        config.max_collection_delay == 0
            ? 0
            : static_cast<int>(delay_rng.UniformInt(
                  0, static_cast<int64_t>(config.max_collection_delay)));
    MultiSeries ms;
    for (size_t k = 0; k < kNumKpis; ++k) {
      Series s(std::move(raw[db][k]));
      if (delay > 0) s = ShiftEdgeFill(s, delay);
      ms.Add(KpiName(static_cast<Kpi>(k)), std::move(s));
    }
    out.roles.push_back(db == 0 ? DbRole::kPrimary : DbRole::kReplica);
    out.kpis.push_back(std::move(ms));
  }
  out.labels = std::move(labels);
  out.events = schedule;
  return out;
}

}  // namespace dbc
