// Workload profiles: the unit-level request-rate and transaction-mix curves
// that drive every database of a unit.
//
// The UKPIC phenomenon (§II-B) exists because all databases of a unit serve
// fractions of ONE upstream workload, so the profile is a property of the
// unit; the load balancer then splits it. Profiles come in the paper's two
// flavours — periodic (diurnal-style, 40% of the Tencent dataset) and
// irregular (bursty/mean-reverting, 60%) — plus sysbench- and TPC-C-shaped
// profiles built from the parameter spaces of Table IV.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "dbc/common/rng.h"

namespace dbc {

/// Fractions of the four statement classes in the offered load; sums to <= 1
/// (the remainder is "other" statements such as SELECT ... FOR UPDATE).
struct TransactionMix {
  double read = 0.7;
  double insert = 0.1;
  double update = 0.15;
  double remove = 0.05;
};

/// A unit-level workload: offered requests/second and statement mix per tick.
class WorkloadProfile {
 public:
  virtual ~WorkloadProfile() = default;

  /// Offered unit-wide request rate at tick t (requests/second, >= 0).
  virtual double RateAt(size_t t) = 0;

  /// Statement mix at tick t.
  virtual TransactionMix MixAt(size_t t) = 0;

  /// Human-readable profile family ("periodic", "sysbench-II", ...).
  virtual std::string Name() const = 0;
};

/// Ornstein-Uhlenbeck mean-reverting noise, the building block of profile
/// wobble and load-balancer imbalance.
class OuProcess {
 public:
  /// theta = reversion speed per tick, sigma = noise scale per tick.
  OuProcess(double mean, double theta, double sigma, Rng rng)
      : mean_(mean), theta_(theta), sigma_(sigma), state_(mean), rng_(rng) {}

  /// Advances one tick and returns the new state.
  double Step();
  double state() const { return state_; }

 private:
  double mean_, theta_, sigma_, state_;
  Rng rng_;
};

/// Parameters for the periodic profile family.
struct PeriodicProfileParams {
  double base_rate = 2000.0;   // requests/second floor
  double amplitude = 1500.0;   // main cycle amplitude
  size_t period = 720;         // main period length in ticks (1h at 5s/point)
  double second_harmonic = 0.3;  // relative amplitude of the 2nd harmonic
  double noise_sigma = 0.015;  // multiplicative OU noise scale
};

/// Parameters for the irregular profile family.
struct IrregularProfileParams {
  double base_rate = 2500.0;
  double walk_sigma = 0.08;    // OU noise scale on the log rate
  double burst_rate = 0.01;    // burst arrivals per tick (Poisson)
  double burst_gain = 1.8;     // burst peak multiplier
  double burst_decay = 0.9;    // per-tick burst decay
  double shift_rate = 0.002;   // probability of a plateau shift per tick
};

/// Sysbench oltp_read_write-style run parameters (Table IV).
struct SysbenchParams {
  int tables = 10;
  int threads = 16;
  int items = 100000;
  double time_minutes = 0.5;
  /// true = Sysbench II (threads cycle 4-8-16-32 periodically);
  /// false = Sysbench I (threads/tables resampled randomly per phase).
  bool periodic = false;
};

/// TPC-C-style run parameters (Table IV).
struct TpccParams {
  int warehouses = 10;
  int threads = 16;
  double warmup_minutes = 0.5;
  double time_minutes = 0.5;
  /// true = TPCC II (periodic thread cycling), false = TPCC I.
  bool periodic = false;
};

/// Factory helpers. Every profile owns a forked RNG, so two profiles built
/// from the same parent Rng with different tags are independent.
std::unique_ptr<WorkloadProfile> MakePeriodicProfile(
    const PeriodicProfileParams& params, Rng rng);
std::unique_ptr<WorkloadProfile> MakeIrregularProfile(
    const IrregularProfileParams& params, Rng rng);
std::unique_ptr<WorkloadProfile> MakeSysbenchProfile(
    const SysbenchParams& params, Rng rng);
std::unique_ptr<WorkloadProfile> MakeTpccProfile(const TpccParams& params,
                                                 Rng rng);

/// Draws random Table IV parameters for the Sysbench I / II spaces.
SysbenchParams SampleSysbenchParams(bool periodic, Rng& rng);
/// Draws random Table IV parameters for the TPCC I / II spaces.
TpccParams SampleTpccParams(bool periodic, Rng& rng);

}  // namespace dbc
