// The 14 key performance indicators of Table II and their UKPIC correlation
// types.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace dbc {

/// KPIs monitored per database (paper Table II). The enumerator order fixes
/// the row order of every KPI matrix in the library.
enum class Kpi : int {
  kComInsert = 0,
  kComUpdate,
  kCpuUtilization,
  kBufferPoolReadRequests,
  kInnodbDataWrites,
  kInnodbDataWritten,
  kInnodbRowsDeleted,
  kInnodbRowsInserted,
  kInnodbRowsRead,
  kInnodbRowsUpdated,
  kRequestsPerSecond,
  kTotalRequests,
  kRealCapacity,
  kTransactionsPerSecond,
};

/// Number of monitored KPIs.
inline constexpr size_t kNumKpis = 14;

/// Which database pairs exhibit UKPIC on a KPI (Table II):
/// - kPrimaryReplica: primary-replica AND replica-replica pairs correlate;
/// - kReplicaOnly: only replica-replica pairs correlate (write-path counters
///   observed through replication diverge on the primary).
enum class KpiCorrelationType {
  kPrimaryReplica,  // "P-R, R-R" rows of Table II
  kReplicaOnly,     // "R-R" rows
};

/// All KPIs in enum order.
const std::array<Kpi, kNumKpis>& AllKpis();

/// Display name ("CPU Utilization", ...).
const std::string& KpiName(Kpi kpi);

/// Correlation type from Table II.
KpiCorrelationType KpiCorrelation(Kpi kpi);

/// Index helper (the enum value).
inline size_t KpiIndex(Kpi kpi) { return static_cast<size_t>(kpi); }

}  // namespace dbc
