// Per-database KPI generation model.
//
// Converts the request rate assigned by the load balancer plus the statement
// mix into the 14 monitored KPIs of Table II, with:
//  - statement-class couplings (rows read/inserted/updated/deleted, buffer
//    pool logical reads, redo write ops/bytes);
//  - a saturating CPU model (cost per request depends on the mix);
//  - a capacity integrator (Real Capacity only ever grows; the reclaim
//    efficiency drops under the fragmentation anomaly of Fig. 12);
//  - multiplicative measurement noise per KPI;
//  - primary-specific decorrelation on the R-R KPIs of Table II (the primary
//    executes original SQL while replicas apply row events, so those
//    counters only correlate replica-to-replica).
#pragma once

#include <array>
#include <cstddef>

#include "dbc/cloudsim/kpi.h"
#include "dbc/cloudsim/profile.h"
#include "dbc/common/rng.h"

namespace dbc {

/// Role of a database within its unit.
enum class DbRole { kPrimary, kReplica };

/// Per-tick KPI distortion — the carrier of both anomaly effects and
/// unlabeled temporal fluctuations.
///
/// Two distortion channels exist because they break correlation differently:
///  - mult/add scale the workload-driven value. A *constant* multiplier
///    survives the min-max normalization of Eq. 1 (same shape), so it only
///    decorrelates when it varies within the window (spikes, wiggling
///    factors).
///  - blend_w/blend_factor replace a fraction of the value with an
///    independent "foreign" signal anchored at the KPI's recent level: this
///    models a database whose dynamics are driven by a different source
///    (rogue queries, replication apply, churn) and decorrelates robustly.
struct KpiEffect {
  std::array<double, kNumKpis> mult;
  std::array<double, kNumKpis> add;
  /// Blend weight in [0, 1] per KPI: v <- (1-w)*v + w*blend_factor*ema(v).
  std::array<double, kNumKpis> blend_w;
  /// Foreign level relative to the KPI's running mean.
  std::array<double, kNumKpis> blend_factor;
  /// Fraction of deleted bytes actually reclaimed (1 = healthy; < 1 grows
  /// Real Capacity anomalously — the Fig. 12 fragmentation case).
  double reclaim = 1.0;
  /// Physical multiplier on the rows actually inserted/deleted (a rogue
  /// churn job really does the extra row work, so the capacity integrator
  /// sees it — unlike the KPI read-out blends).
  double churn_rows_mult = 1.0;
  /// CPU cost multiplier per request (> 1 = resource-hog workload, Fig. 13).
  double cpu_cost_mult = 1.0;

  KpiEffect() {
    mult.fill(1.0);
    add.fill(0.0);
    blend_w.fill(0.0);
    blend_factor.fill(1.0);
  }

  /// Composes another effect on top of this one.
  void Combine(const KpiEffect& other);
};

/// Tuning of the physical model.
struct InstanceModelParams {
  double rows_per_select = 8.0;
  double rows_per_insert = 1.5;
  double rows_per_update = 1.2;
  double rows_per_delete = 1.0;
  double logical_reads_per_row = 1.6;   // buffer pool requests per row read
  double write_ops_per_row = 0.5;       // redo/ibuf writes per modified row
  double bytes_per_write_op = 16384.0;  // ~page-sized IO
  double row_bytes = 220.0;             // average on-disk row footprint
  double requests_per_transaction = 4.0;
  /// Request cost scale for the CPU saturation law (requests/second a core
  /// can absorb at the baseline mix). 4-core instances in the paper.
  double core_capacity = 2500.0;
  double cores = 4.0;
  double base_cpu = 4.0;            // idle/background CPU percent
  double measurement_noise = 0.012;  // sigma of per-KPI multiplicative noise
  /// Extra independent modulation amplitude on the primary's R-R KPIs.
  double primary_rr_sigma = 0.35;
  double initial_capacity_bytes = 8.0e9;
  double tick_seconds = 5.0;
};

/// Stateful per-database KPI generator.
class InstanceModel {
 public:
  InstanceModel(DbRole role, const InstanceModelParams& params, Rng rng);

  /// Produces the 14 KPI values for one tick.
  std::array<double, kNumKpis> Tick(double rate, const TransactionMix& mix,
                                    const KpiEffect& effect);

  DbRole role() const { return role_; }
  /// Changes the role mid-stream (primary switchover). Takes effect on the
  /// next Tick(); all other model state (capacity, EMA, noise) is kept.
  void SetRole(DbRole role) { role_ = role; }
  double capacity_bytes() const { return capacity_bytes_; }

 private:
  double Noise();

  DbRole role_;
  InstanceModelParams params_;
  Rng rng_;
  OuProcess primary_rr_mod_;  // slow independent factor for the primary
  double capacity_bytes_;
  /// Running mean of each KPI's *healthy* value, the anchor for blends.
  std::array<double, kNumKpis> ema_{};
  bool ema_initialized_ = false;
};

}  // namespace dbc
