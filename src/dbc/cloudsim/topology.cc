#include "dbc/cloudsim/topology.h"

#include <algorithm>
#include <array>

namespace dbc {

const std::string& TopologyEventKindName(TopologyEventKind kind) {
  static const std::array<std::string, kNumTopologyEventKinds> kNames = {
      "replica-crash",
      "replica-join",
      "primary-switchover",
      "lb-rebalance",
  };
  return kNames[static_cast<size_t>(kind)];
}

size_t TopologySlotCount(const std::vector<TopologyEvent>& events,
                         size_t num_dbs) {
  size_t slots = num_dbs;
  for (const TopologyEvent& event : events) {
    if (event.kind == TopologyEventKind::kReplicaJoin) ++slots;
  }
  return slots;
}

std::vector<TopologyEvent> ScheduleTopologyFaults(
    const TopologyFaultConfig& config, size_t num_dbs, size_t ticks,
    Rng& rng) {
  std::vector<TopologyEvent> out;
  if (num_dbs == 0 || ticks == 0 || config.max_events == 0) return out;

  std::vector<TopologyEventKind> kinds = config.kinds;
  if (kinds.empty()) {
    kinds = {TopologyEventKind::kReplicaCrash, TopologyEventKind::kReplicaJoin,
             TopologyEventKind::kPrimarySwitchover,
             TopologyEventKind::kLbRebalance};
  }
  std::vector<double> weights = config.kind_weights;
  weights.resize(kinds.size(), 1.0);

  // Membership evolves as events are drawn; the schedule must stay
  // consistent with it (no crashing a member twice, no promoting a ghost).
  std::vector<uint8_t> alive(num_dbs, 1);
  size_t primary = 0;
  size_t next_join_id = num_dbs;
  size_t live = num_dbs;

  // Reservoir-style uniform pick over live members != exclude (pass
  // alive.size() to exclude nobody). False when no candidate exists.
  auto pick_live = [&](size_t exclude, size_t* out_db) {
    size_t seen = 0;
    size_t picked = 0;
    for (size_t db = 0; db < alive.size(); ++db) {
      if (!alive[db] || db == exclude) continue;
      ++seen;
      if (rng.UniformInt(1, static_cast<int64_t>(seen)) == 1) picked = db;
    }
    if (seen == 0) return false;
    *out_db = picked;
    return true;
  };

  size_t t = config.head_clearance;
  const size_t tail = std::max<size_t>(config.min_gap, 40);
  size_t drawn = 0;
  while (drawn < config.max_events && t + tail < ticks) {
    const TopologyEventKind kind = kinds[rng.WeightedChoice(weights)];
    TopologyEvent event;
    event.kind = kind;
    event.start = t + static_cast<size_t>(rng.UniformInt(
                          0, static_cast<int64_t>(config.min_gap / 4 + 1)));
    if (event.start + tail >= ticks) break;
    bool usable = true;
    switch (kind) {
      case TopologyEventKind::kReplicaCrash: {
        size_t victim = 0;
        if (live <= config.min_members || !pick_live(primary, &victim)) {
          usable = false;
          break;
        }
        event.db = victim;
        event.duration = 0;
        alive[victim] = 0;
        --live;
        out.push_back(event);
        if (config.replace_after_crash) {
          TopologyEvent join;
          join.kind = TopologyEventKind::kReplicaJoin;
          join.db = next_join_id++;
          join.start = event.start + config.replace_delay;
          join.duration = config.join_ramp;
          join.magnitude = 1.0;
          if (join.start + tail < ticks) {
            alive.resize(join.db + 1, 0);
            alive[join.db] = 1;
            ++live;
            out.push_back(join);
            t = join.start;
          }
        }
        break;
      }
      case TopologyEventKind::kReplicaJoin: {
        event.db = next_join_id++;
        event.duration = config.join_ramp;
        event.magnitude = 1.0;
        alive.resize(event.db + 1, 0);
        alive[event.db] = 1;
        ++live;
        out.push_back(event);
        break;
      }
      case TopologyEventKind::kPrimarySwitchover: {
        size_t promoted = 0;
        if (!pick_live(primary, &promoted)) {
          usable = false;
          break;
        }
        event.db = promoted;
        event.peer = primary;
        event.duration = config.switchover_dip;
        event.magnitude = config.switchover_dip_magnitude;
        primary = promoted;
        out.push_back(event);
        break;
      }
      case TopologyEventKind::kLbRebalance: {
        size_t gainer = 0, loser = 0;
        if (!pick_live(alive.size(), &gainer) || !pick_live(gainer, &loser)) {
          usable = false;
          break;
        }
        event.db = gainer;
        event.peer = loser;
        event.duration = config.rebalance_ramp;
        event.magnitude = config.rebalance_shift;
        out.push_back(event);
        break;
      }
    }
    if (!usable) {
      // Kind not drawable under current membership (e.g. at the crash
      // floor); still consume the slot so the loop terminates.
      ++drawn;
      continue;
    }
    ++drawn;
    t = std::max(t, out.back().end()) + config.min_gap;
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const TopologyEvent& a, const TopologyEvent& b) {
                     return a.start < b.start;
                   });
  return out;
}

}  // namespace dbc
