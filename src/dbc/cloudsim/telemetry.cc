#include "dbc/cloudsim/telemetry.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dbc {

const std::string& TelemetryFaultKindName(TelemetryFaultKind kind) {
  static const std::array<std::string, kNumTelemetryFaultKinds> kNames = {
      "tick-dropout",
      "nan-burst",
      "stale-repeat",
      "out-of-order",
      "blackout",
  };
  return kNames[static_cast<size_t>(kind)];
}

namespace {

/// Duration range (ticks) per kind; blackouts are long (a dead collector
/// stays dead until someone restarts it), delivery glitches are short.
void DurationRange(TelemetryFaultKind kind, size_t* lo, size_t* hi) {
  switch (kind) {
    case TelemetryFaultKind::kTickDropout:
      *lo = 3;
      *hi = 12;
      return;
    case TelemetryFaultKind::kNanBurst:
      *lo = 2;
      *hi = 8;
      return;
    case TelemetryFaultKind::kStaleRepeat:
      *lo = 4;
      *hi = 16;
      return;
    case TelemetryFaultKind::kOutOfOrder:
      *lo = 4;
      *hi = 14;
      return;
    case TelemetryFaultKind::kBlackout:
      *lo = 30;
      *hi = 90;
      return;
  }
  *lo = 3;
  *hi = 12;
}

}  // namespace

std::vector<TelemetryFaultEvent> ScheduleTelemetryFaults(
    const TelemetryFaultConfig& config, size_t num_dbs, size_t ticks,
    Rng& rng) {
  std::vector<TelemetryFaultKind> kinds = config.kinds;
  if (kinds.empty()) {
    for (size_t i = 0; i < kNumTelemetryFaultKinds; ++i) {
      kinds.push_back(static_cast<TelemetryFaultKind>(i));
    }
  }
  std::vector<double> weights = config.kind_weights;
  if (weights.size() != kinds.size()) {
    weights.assign(kinds.size(), 1.0);
    for (size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == TelemetryFaultKind::kBlackout) weights[i] = 0.5;
    }
  }

  const double budget =
      config.target_ratio * static_cast<double>(num_dbs * ticks);

  std::vector<TelemetryFaultEvent> events;
  std::vector<std::vector<std::pair<size_t, size_t>>> busy(num_dbs);

  double spent = 0.0;
  size_t attempts = 0;
  const size_t max_attempts = 50 * (num_dbs * ticks / 100 + 10);
  while (spent < budget && attempts < max_attempts) {
    ++attempts;
    TelemetryFaultEvent ev;
    ev.kind = kinds[rng.WeightedChoice(weights)];
    ev.db = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_dbs) - 1));
    size_t lo = 0, hi = 0;
    DurationRange(ev.kind, &lo, &hi);
    ev.duration = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
    if (config.head_clearance + ev.duration + 1 >= ticks) continue;
    ev.start = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.head_clearance),
                       static_cast<int64_t>(ticks - ev.duration - 1)));
    ev.intensity = rng.Uniform(0.5, 1.0);

    bool clash = false;
    for (const auto& [b, e] : busy[ev.db]) {
      if (ev.start < e + config.min_gap && b < ev.end() + config.min_gap) {
        clash = true;
        break;
      }
    }
    if (clash) continue;

    busy[ev.db].push_back({ev.start, ev.end()});
    events.push_back(ev);
    spent += static_cast<double>(ev.duration);
  }
  std::sort(events.begin(), events.end(),
            [](const TelemetryFaultEvent& a, const TelemetryFaultEvent& b) {
              return a.start != b.start ? a.start < b.start : a.db < b.db;
            });
  return events;
}

TelemetryFaultInjector::TelemetryFaultInjector(
    std::vector<TelemetryFaultEvent> events, size_t num_dbs,
    size_t max_reorder, Rng rng)
    : events_(std::move(events)),
      num_dbs_(num_dbs),
      max_reorder_(std::max<size_t>(1, max_reorder)),
      rng_(rng),
      last_delivered_(num_dbs),
      has_delivered_(num_dbs, 0),
      corrupted_(num_dbs) {}

void TelemetryFaultInjector::CountCorrupted(TelemetryFaultKind kind) {
  Inc(metrics_.samples_corrupted);
  Inc(metrics_.corrupted_by_kind[static_cast<size_t>(kind)]);
}

std::vector<TelemetrySample> TelemetryFaultInjector::Step(
    size_t t, const std::vector<std::array<double, kNumKpis>>& clean) {
  assert(clean.size() == num_dbs_);
  std::vector<TelemetrySample> out;

  // Late arrivals scheduled for this step surface first: they reach the
  // service before the on-time samples the collector sent afterwards.
  const auto due = delayed_.find(t);
  if (due != delayed_.end()) {
    out.insert(out.end(), due->second.begin(), due->second.end());
    delayed_.erase(due);
  }

  for (size_t db = 0; db < num_dbs_; ++db) {
    corrupted_[db].resize(std::max(corrupted_[db].size(), t + 1), 0);

    const TelemetryFaultEvent* active = nullptr;
    for (const TelemetryFaultEvent& ev : events_) {
      if (ev.db == db && ev.ActiveAt(t)) {
        active = &ev;
        break;
      }
    }

    TelemetrySample sample;
    sample.tick = t;
    sample.db = db;
    sample.values = clean[db];

    if (active == nullptr) {
      out.push_back(sample);
      last_delivered_[db] = sample.values;
      has_delivered_[db] = 1;
      continue;
    }

    switch (active->kind) {
      case TelemetryFaultKind::kBlackout:
        corrupted_[db][t] = 1;
        CountCorrupted(active->kind);
        break;  // nothing delivered
      case TelemetryFaultKind::kTickDropout:
        if (rng_.Bernoulli(active->intensity)) {
          corrupted_[db][t] = 1;
          CountCorrupted(active->kind);
        } else {
          out.push_back(sample);
          last_delivered_[db] = sample.values;
          has_delivered_[db] = 1;
        }
        break;
      case TelemetryFaultKind::kNanBurst: {
        const size_t forced = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(kNumKpis) - 1));
        for (size_t k = 0; k < kNumKpis; ++k) {
          if (k == forced || rng_.Bernoulli(active->intensity)) {
            sample.values[k] = std::numeric_limits<double>::quiet_NaN();
          }
        }
        corrupted_[db][t] = 1;
        CountCorrupted(active->kind);
        out.push_back(sample);
        break;
      }
      case TelemetryFaultKind::kStaleRepeat:
        if (has_delivered_[db]) {
          sample.values = last_delivered_[db];  // frozen collector
          corrupted_[db][t] = 1;
          CountCorrupted(active->kind);
        }
        out.push_back(sample);
        break;
      case TelemetryFaultKind::kOutOfOrder: {
        const size_t delay = static_cast<size_t>(
            rng_.UniformInt(1, static_cast<int64_t>(max_reorder_)));
        delayed_[t + delay].push_back(sample);
        corrupted_[db][t] = 1;
        CountCorrupted(active->kind);
        last_delivered_[db] = sample.values;
        has_delivered_[db] = 1;
        break;
      }
    }
  }
  Inc(metrics_.samples_delivered, out.size());
  return out;
}

std::vector<TelemetrySample> TelemetryFaultInjector::Flush() {
  std::vector<TelemetrySample> out;
  for (auto& [step, samples] : delayed_) {
    out.insert(out.end(), samples.begin(), samples.end());
  }
  delayed_.clear();
  Inc(metrics_.samples_delivered, out.size());
  return out;
}

bool TelemetryFaultInjector::FaultAt(size_t db, size_t t) const {
  for (const TelemetryFaultEvent& ev : events_) {
    if (ev.db == db && ev.ActiveAt(t)) return true;
  }
  return false;
}

bool TelemetryFaultInjector::CorruptedAt(size_t db, size_t t) const {
  if (db >= corrupted_.size() || t >= corrupted_[db].size()) return false;
  return corrupted_[db][t] != 0;
}

std::vector<std::vector<TelemetrySample>> DegradeUnit(
    const UnitData& unit, const TelemetryFaultConfig& config, Rng& rng,
    std::vector<TelemetryFaultEvent>* events_out) {
  const size_t n = unit.num_dbs();
  const size_t ticks = unit.length();
  std::vector<TelemetryFaultEvent> events =
      ScheduleTelemetryFaults(config, n, ticks, rng);
  if (events_out != nullptr) *events_out = events;
  TelemetryFaultInjector injector(std::move(events), n, config.max_reorder,
                                  rng.Fork(0x7e1e));

  std::vector<std::vector<TelemetrySample>> batches(ticks);
  std::vector<std::array<double, kNumKpis>> clean(n);
  for (size_t t = 0; t < ticks; ++t) {
    for (size_t db = 0; db < n; ++db) {
      for (size_t k = 0; k < kNumKpis; ++k) {
        clean[db][k] = unit.kpis[db].row(k)[t];
      }
    }
    batches[t] = injector.Step(t, clean);
  }
  if (ticks > 0) {
    const std::vector<TelemetrySample> tail = injector.Flush();
    batches.back().insert(batches.back().end(), tail.begin(), tail.end());
  }
  // Under topology churn an absent database has no collector: drop samples
  // for (db, tick) pairs outside the membership intervals. Filtering after
  // the injector keeps its random stream independent of membership.
  if (!unit.present.empty()) {
    for (auto& batch : batches) {
      batch.erase(std::remove_if(batch.begin(), batch.end(),
                                 [&unit](const TelemetrySample& s) {
                                   return !unit.PresentAt(s.db, s.tick);
                                 }),
                  batch.end());
    }
  }
  return batches;
}

}  // namespace dbc
