// Unit load balancer: splits the unit workload across databases.
//
// Healthy operation keeps per-database shares near 1/N with slowly varying
// imbalance (absolute balancing is unachievable, §II-D "temporal
// fluctuations"). A defective strategy (Fig. 4's real incident) skews an
// adjustable share of traffic onto one database.
#pragma once

#include <cstddef>
#include <vector>

#include "dbc/cloudsim/profile.h"
#include "dbc/common/rng.h"

namespace dbc {

/// Load balancer configuration.
struct LoadBalancerConfig {
  size_t num_databases = 5;
  /// OU noise scale of the per-database share (relative).
  double imbalance_sigma = 0.01;
  /// Mean-reversion speed of the share noise.
  double imbalance_theta = 0.1;
};

/// Stateful per-tick traffic splitter.
class LoadBalancer {
 public:
  LoadBalancer(const LoadBalancerConfig& config, Rng rng);

  /// Per-database request rates for the current tick given the unit rate.
  /// Shares always sum to 1.
  std::vector<double> Split(double unit_rate);

  /// Activates a defective strategy: `skew_fraction` of the other databases'
  /// traffic is redirected to `target` until ClearSkew().
  void SetSkew(size_t target, double skew_fraction);
  void ClearSkew();
  bool skewed() const { return skew_target_ >= 0; }

  size_t num_databases() const { return shares_.size(); }

 private:
  std::vector<OuProcess> shares_;
  int skew_target_ = -1;
  double skew_fraction_ = 0.0;
};

}  // namespace dbc
