// Unit load balancer: splits the unit workload across databases.
//
// Healthy operation keeps per-database shares near 1/N with slowly varying
// imbalance (absolute balancing is unachievable, §II-D "temporal
// fluctuations"). A defective strategy (Fig. 4's real incident) skews an
// adjustable share of traffic onto one database.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbc/cloudsim/profile.h"
#include "dbc/common/rng.h"

namespace dbc {

/// Load balancer configuration.
struct LoadBalancerConfig {
  size_t num_databases = 5;
  /// OU noise scale of the per-database share (relative).
  double imbalance_sigma = 0.01;
  /// Mean-reversion speed of the share noise.
  double imbalance_theta = 0.1;
};

/// Stateful per-tick traffic splitter over a dynamic member set.
class LoadBalancer {
 public:
  LoadBalancer(const LoadBalancerConfig& config, Rng rng);

  /// Per-database request rates for the current tick given the unit rate.
  /// Shares of active members always sum to 1; inactive members get 0.
  std::vector<double> Split(double unit_rate);

  /// Activates a defective strategy: `skew_fraction` of the other databases'
  /// traffic is redirected to `target` until ClearSkew().
  void SetSkew(size_t target, double skew_fraction);
  void ClearSkew();
  bool skewed() const { return skew_target_ >= 0; }

  /// Membership churn: an inactive database receives no traffic (crashed,
  /// or a scale-out slot that has not joined yet).
  void SetActive(size_t db, bool active);
  bool Active(size_t db) const { return active_[db] != 0; }

  /// Multiplicative weight bias (>= 0) on one member's share: a joining
  /// replica ramps from ~0 to 1, a rebalance shifts bias between members.
  void SetBias(size_t db, double bias);

  size_t num_databases() const { return shares_.size(); }
  size_t active_count() const;

 private:
  std::vector<OuProcess> shares_;
  std::vector<uint8_t> active_;
  std::vector<double> bias_;
  int skew_target_ = -1;
  double skew_fraction_ = 0.0;
};

}  // namespace dbc
