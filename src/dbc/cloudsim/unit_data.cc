#include "dbc/cloudsim/unit_data.h"

#include <algorithm>

namespace dbc {

size_t UnitData::MembersAt(size_t t) const {
  if (present.empty()) return num_dbs();
  size_t count = 0;
  for (const auto& db_present : present) {
    count += (t < db_present.size() && db_present[t] != 0);
  }
  return count;
}

size_t UnitData::AbnormalPoints() const {
  size_t count = 0;
  for (const auto& db_labels : labels) {
    for (uint8_t v : db_labels) count += (v != 0);
  }
  return count;
}

UnitData UnitData::Slice(size_t begin, size_t end) const {
  UnitData out;
  out.name = name;
  out.profile = profile;
  out.periodic = periodic;
  out.roles = roles;
  out.kpis.reserve(kpis.size());
  out.labels.reserve(labels.size());
  for (const auto& ms : kpis) out.kpis.push_back(ms.Slice(begin, end));
  for (const auto& db_labels : labels) {
    const size_t lo = std::min(begin, db_labels.size());
    const size_t hi = std::min(end, db_labels.size());
    out.labels.emplace_back(db_labels.begin() + static_cast<ptrdiff_t>(lo),
                            db_labels.begin() + static_cast<ptrdiff_t>(hi));
  }
  // Keep only events intersecting the slice, rebased to the new origin.
  for (AnomalyEvent ev : events) {
    if (ev.end() <= begin || ev.start >= end) continue;
    const size_t s = std::max(ev.start, begin);
    const size_t e = std::min(ev.end(), end);
    ev.start = s - begin;
    ev.duration = e - s;
    out.events.push_back(ev);
  }
  for (const auto& db_present : present) {
    const size_t lo = std::min(begin, db_present.size());
    const size_t hi = std::min(end, db_present.size());
    out.present.emplace_back(db_present.begin() + static_cast<ptrdiff_t>(lo),
                             db_present.begin() + static_cast<ptrdiff_t>(hi));
  }
  if (!primary.empty()) {
    const size_t lo = std::min(begin, primary.size());
    const size_t hi = std::min(end, primary.size());
    out.primary.assign(primary.begin() + static_cast<ptrdiff_t>(lo),
                       primary.begin() + static_cast<ptrdiff_t>(hi));
  }
  for (TopologyEvent ev : topology) {
    const size_t e = std::max(ev.end(), ev.start + 1);
    if (e <= begin || ev.start >= end) continue;
    const size_t s = std::max(ev.start, begin);
    ev.duration = std::min(e, end) - s;
    if (ev.kind == TopologyEventKind::kReplicaCrash) ev.duration = 0;
    ev.start = s - begin;
    out.topology.push_back(ev);
  }
  return out;
}

}  // namespace dbc
