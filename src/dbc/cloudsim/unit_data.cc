#include "dbc/cloudsim/unit_data.h"

#include <algorithm>

namespace dbc {

size_t UnitData::AbnormalPoints() const {
  size_t count = 0;
  for (const auto& db_labels : labels) {
    for (uint8_t v : db_labels) count += (v != 0);
  }
  return count;
}

UnitData UnitData::Slice(size_t begin, size_t end) const {
  UnitData out;
  out.name = name;
  out.profile = profile;
  out.periodic = periodic;
  out.roles = roles;
  out.kpis.reserve(kpis.size());
  out.labels.reserve(labels.size());
  for (const auto& ms : kpis) out.kpis.push_back(ms.Slice(begin, end));
  for (const auto& db_labels : labels) {
    const size_t lo = std::min(begin, db_labels.size());
    const size_t hi = std::min(end, db_labels.size());
    out.labels.emplace_back(db_labels.begin() + static_cast<ptrdiff_t>(lo),
                            db_labels.begin() + static_cast<ptrdiff_t>(hi));
  }
  // Keep only events intersecting the slice, rebased to the new origin.
  for (AnomalyEvent ev : events) {
    if (ev.end() <= begin || ev.start >= end) continue;
    const size_t s = std::max(ev.start, begin);
    const size_t e = std::min(ev.end(), end);
    ev.start = s - begin;
    ev.duration = e - s;
    out.events.push_back(ev);
  }
  return out;
}

}  // namespace dbc
