#include "dbc/cloudsim/instance_model.h"

#include <algorithm>
#include <cmath>

#include "dbc/common/mathutil.h"

namespace dbc {

void KpiEffect::Combine(const KpiEffect& other) {
  for (size_t i = 0; i < kNumKpis; ++i) {
    mult[i] *= other.mult[i];
    add[i] += other.add[i];
    // Blends do not stack (scheduling keeps same-db events apart); the
    // stronger blend wins.
    if (other.blend_w[i] > blend_w[i]) {
      blend_w[i] = other.blend_w[i];
      blend_factor[i] = other.blend_factor[i];
    }
  }
  reclaim *= other.reclaim;
  churn_rows_mult *= other.churn_rows_mult;
  cpu_cost_mult *= other.cpu_cost_mult;
}

InstanceModel::InstanceModel(DbRole role, const InstanceModelParams& params,
                             Rng rng)
    : role_(role),
      params_(params),
      rng_(rng.Fork(1)),
      primary_rr_mod_(1.0, 0.03, params.primary_rr_sigma * 0.1, rng.Fork(2)),
      capacity_bytes_(params.initial_capacity_bytes) {}

double InstanceModel::Noise() {
  return 1.0 + params_.measurement_noise * rng_.Normal();
}

std::array<double, kNumKpis> InstanceModel::Tick(double rate,
                                                 const TransactionMix& mix,
                                                 const KpiEffect& effect) {
  std::array<double, kNumKpis> kpi{};
  rate = std::max(0.0, rate);

  // Statement-class throughput (statements/second).
  const double reads = rate * mix.read;
  const double inserts = rate * mix.insert;
  const double updates = rate * mix.update;
  const double deletes = rate * mix.remove;

  // Row-level activity.
  const double rows_read = reads * params_.rows_per_select +
                           updates * params_.rows_per_update +
                           deletes * params_.rows_per_delete;
  const double rows_inserted = inserts * params_.rows_per_insert;
  const double rows_updated = updates * params_.rows_per_update;
  const double rows_deleted = deletes * params_.rows_per_delete;

  // IO path.
  const double modified_rows = rows_inserted + rows_updated + rows_deleted;
  const double data_writes =
      modified_rows * params_.write_ops_per_row + 2.0;  // + background flush
  const double data_written = data_writes * params_.bytes_per_write_op;
  const double bp_requests = rows_read * params_.logical_reads_per_row;

  // CPU saturation: writes cost ~2.2x a point read; anomalous tasks multiply
  // the per-request cost (Fig. 13).
  const double weighted_load =
      (reads + 2.2 * (inserts + updates + deletes)) * effect.cpu_cost_mult;
  const double capacity = params_.core_capacity * params_.cores;
  const double utilization =
      capacity <= 0.0 ? 1.0 : weighted_load / (weighted_load + capacity);
  const double cpu =
      params_.base_cpu + (100.0 - params_.base_cpu) * 2.0 *
                             std::min(0.5, utilization);

  // Capacity integrator: inserts add bytes; deletes reclaim only
  // `effect.reclaim` of theirs (fragmentation leaves dead space); churn jobs
  // multiply the physical row work.
  capacity_bytes_ +=
      params_.tick_seconds * params_.row_bytes * effect.churn_rows_mult *
      (rows_inserted - rows_deleted * effect.reclaim);
  capacity_bytes_ = std::max(capacity_bytes_, 1.0e6);

  // Primary-side decorrelation factor for R-R KPIs (Table II).
  const double primary_factor =
      role_ == DbRole::kPrimary
          ? Clamp(primary_rr_mod_.Step() +
                      params_.primary_rr_sigma * 0.5 *
                          std::sin(0.013 * capacity_bytes_ / 1.0e7),
                  0.4, 1.8)
          : 1.0;

  kpi[KpiIndex(Kpi::kComInsert)] = inserts * primary_factor;
  kpi[KpiIndex(Kpi::kComUpdate)] = updates * primary_factor;
  kpi[KpiIndex(Kpi::kCpuUtilization)] = cpu;
  kpi[KpiIndex(Kpi::kBufferPoolReadRequests)] = bp_requests;
  kpi[KpiIndex(Kpi::kInnodbDataWrites)] = data_writes;
  kpi[KpiIndex(Kpi::kInnodbDataWritten)] = data_written;
  kpi[KpiIndex(Kpi::kInnodbRowsDeleted)] = rows_deleted * primary_factor;
  kpi[KpiIndex(Kpi::kInnodbRowsInserted)] = rows_inserted * primary_factor;
  kpi[KpiIndex(Kpi::kInnodbRowsRead)] = rows_read;
  kpi[KpiIndex(Kpi::kInnodbRowsUpdated)] = rows_updated;
  kpi[KpiIndex(Kpi::kRequestsPerSecond)] = rate;
  kpi[KpiIndex(Kpi::kTotalRequests)] = rate * params_.tick_seconds;
  kpi[KpiIndex(Kpi::kRealCapacity)] = capacity_bytes_;
  kpi[KpiIndex(Kpi::kTransactionsPerSecond)] =
      rate / params_.requests_per_transaction * primary_factor;

  // Track the healthy level of every KPI (anchor for anomaly blends) before
  // distortions are applied.
  if (!ema_initialized_) {
    ema_ = kpi;
    ema_initialized_ = true;
  } else {
    constexpr double kAlpha = 0.05;
    for (size_t i = 0; i < kNumKpis; ++i) {
      ema_[i] = (1.0 - kAlpha) * ema_[i] + kAlpha * kpi[i];
    }
  }

  // Apply the composed effect (anomalies + fluctuations) and measurement
  // noise. Real Capacity is a level, not a rate: it takes no multiplicative
  // measurement noise (monitoring reads the exact tablespace size) but still
  // honours explicit effect distortions.
  for (size_t i = 0; i < kNumKpis; ++i) {
    double v = kpi[i] * effect.mult[i] + effect.add[i];
    const double w = effect.blend_w[i];
    if (w > 0.0) {
      v = (1.0 - w) * v + w * effect.blend_factor[i] * ema_[i];
    }
    if (i != KpiIndex(Kpi::kRealCapacity)) v *= Noise();
    kpi[i] = std::max(0.0, v);
  }
  // CPU is a percentage.
  kpi[KpiIndex(Kpi::kCpuUtilization)] =
      Clamp(kpi[KpiIndex(Kpi::kCpuUtilization)], 0.0, 100.0);
  return kpi;
}

}  // namespace dbc
