// Telemetry fault injection: degrades a clean UnitData feed into the
// imperfect sample stream a real collector fleet delivers.
//
// The paper's deployment (Fig. 2/6) consumes KPI feeds from per-database
// collectors, which arrive with collection delays (§II-D) — and, in any real
// fleet, also with dropped ticks, NaN bursts, frozen (stale-repeat) runs,
// bounded out-of-order delivery, and whole-feed blackouts when a collector
// dies. This module schedules such faults with ground-truth labels, mirroring
// the AnomalyInjector API, so the ingestion layer and the detector's graceful
// degradation can be validated chaos-style (cf. PerfCE's fault injection).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dbc/cloudsim/kpi.h"
#include "dbc/cloudsim/unit_data.h"
#include "dbc/common/rng.h"
#include "dbc/obs/metrics.h"

namespace dbc {

/// Kinds of injected collector faults.
enum class TelemetryFaultKind : int {
  kTickDropout = 0,  // individual samples lost with high probability
  kNanBurst,         // samples arrive but carry NaN / missing values
  kStaleRepeat,      // collector freezes and re-sends the last vector
  kOutOfOrder,       // delivery delayed by a bounded number of ticks
  kBlackout,         // the database's feed disappears entirely
};

/// Number of telemetry fault kinds.
inline constexpr size_t kNumTelemetryFaultKinds = 5;

/// Display name ("tick-dropout", ...).
const std::string& TelemetryFaultKindName(TelemetryFaultKind kind);

/// One scheduled collector fault on one database's feed.
struct TelemetryFaultEvent {
  TelemetryFaultKind kind = TelemetryFaultKind::kTickDropout;
  size_t db = 0;
  size_t start = 0;
  size_t duration = 1;
  /// Kind-specific severity in (0, 1]: drop probability for dropouts, NaN
  /// probability per KPI for bursts. Ignored by the other kinds.
  double intensity = 0.7;

  size_t end() const { return start + duration; }
  bool ActiveAt(size_t t) const { return t >= start && t < end(); }
};

/// Fault-schedule configuration.
struct TelemetryFaultConfig {
  /// Target fraction of (database, tick) samples inside a fault event.
  double target_ratio = 0.05;
  /// Enabled kinds; empty = all kinds.
  std::vector<TelemetryFaultKind> kinds;
  /// Relative sampling weight per enabled kind (empty = uniform, except
  /// blackouts 0.5x — whole-collector deaths are rarer than flaky delivery).
  std::vector<double> kind_weights;
  /// Ticks kept fault-free at the head of the trace (warm-up).
  size_t head_clearance = 30;
  /// Minimum clean gap between events on the same database's feed.
  size_t min_gap = 10;
  /// Maximum delivery delay (ticks) for out-of-order faults.
  size_t max_reorder = 3;
};

/// Draws a non-overlapping per-database fault schedule hitting ~target_ratio.
std::vector<TelemetryFaultEvent> ScheduleTelemetryFaults(
    const TelemetryFaultConfig& config, size_t num_dbs, size_t ticks,
    Rng& rng);

/// One delivered collector sample: the KPI vector of one database stamped
/// with its source tick. A degraded feed is a sequence of these — possibly
/// with gaps, NaNs, duplicates of earlier values, and late arrivals.
struct TelemetrySample {
  size_t tick = 0;  // collector timestamp (source tick index)
  size_t db = 0;
  std::array<double, kNumKpis> values{};
};

/// Injection-side ground-truth counters (null = off). Comparing these with
/// the ingest layer's dbc_ingest_* counters closes the loop: faults injected
/// vs. degradation actually detected downstream.
struct TelemetryFaultMetrics {
  /// Samples handed to the monitoring service (late arrivals included).
  Counter* samples_delivered = nullptr;
  /// Ground-truth corrupted (db, tick) points (dropped, NaN'd, frozen, or
  /// delayed), all kinds.
  Counter* samples_corrupted = nullptr;
  /// The same, split by fault kind (indexed by TelemetryFaultKind).
  std::array<Counter*, kNumTelemetryFaultKinds> corrupted_by_kind{};
};

/// Turns scheduled fault events into a degraded sample stream.
///
/// Drive it with one clean tick at a time; Step() returns the samples that
/// reach the monitoring service at that wall-clock step (late samples from
/// out-of-order faults surface here too). Flush() releases anything still
/// delayed after the feed ends.
class TelemetryFaultInjector {
 public:
  TelemetryFaultInjector(std::vector<TelemetryFaultEvent> events,
                         size_t num_dbs, size_t max_reorder, Rng rng);

  /// Installs observability counters (copied; null members stay no-ops).
  /// Counting never perturbs the random stream: degraded output is identical
  /// with metrics on or off.
  void set_metrics(const TelemetryFaultMetrics& metrics) {
    metrics_ = metrics;
  }

  /// Degrades the clean tick `t` (values[db][kpi]); returns the samples
  /// delivered at this step, in arrival order.
  std::vector<TelemetrySample> Step(
      size_t t, const std::vector<std::array<double, kNumKpis>>& clean);

  /// Releases every still-delayed sample (end of feed).
  std::vector<TelemetrySample> Flush();

  /// True when `db`'s feed is inside any scheduled event at `t`.
  bool FaultAt(size_t db, size_t t) const;

  /// True when the sample (db, t) was actually corrupted (dropped, NaN'd,
  /// frozen, or delayed) — the per-point ground truth; dropouts inside an
  /// event window may still deliver clean samples.
  bool CorruptedAt(size_t db, size_t t) const;

  const std::vector<TelemetryFaultEvent>& events() const { return events_; }

 private:
  /// Records one ground-truth corruption (total + per-kind).
  void CountCorrupted(TelemetryFaultKind kind);

  std::vector<TelemetryFaultEvent> events_;
  size_t num_dbs_ = 0;
  size_t max_reorder_ = 3;
  Rng rng_;
  /// Samples held back by out-of-order faults, keyed by release step.
  std::map<size_t, std::vector<TelemetrySample>> delayed_;
  /// Last vector each collector delivered (what a frozen collector re-sends).
  std::vector<std::array<double, kNumKpis>> last_delivered_;
  std::vector<uint8_t> has_delivered_;
  /// corrupted_[db] grows one flag per stepped tick.
  std::vector<std::vector<uint8_t>> corrupted_;
  TelemetryFaultMetrics metrics_;
};

/// Convenience: degrades a whole unit trace. batches[t] holds the samples
/// arriving at step t; samples still delayed at the end are appended to the
/// final batch. `events_out` (optional) receives the drawn fault schedule.
std::vector<std::vector<TelemetrySample>> DegradeUnit(
    const UnitData& unit, const TelemetryFaultConfig& config, Rng& rng,
    std::vector<TelemetryFaultEvent>* events_out = nullptr);

}  // namespace dbc
