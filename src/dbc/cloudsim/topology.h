// Topology fault injection: unit membership churn with ground-truth labels.
//
// DBCatcher's UKPIC signal assumes a stable unit — one primary plus a fixed
// replica set behind a healthy load balancer — yet the disruptions cloud
// databases actually suffer (primary switchover, replica crash/replace,
// scale-out/in, balancer rebalancing) change exactly that membership. This
// module schedules such events chaos-style (cf. PerfCE's injected topology
// faults) so both the simulator and the detection pipeline can be exercised
// against a *dynamic* per-tick member set:
//  - replica crash: the database leaves the unit and its feed goes silent;
//  - replica join (scale-out / replacement): a brand-new database id enters
//    mid-stream with cold history and a warm-up traffic ramp;
//  - primary switchover: the primary role moves to a replica, with a brief
//    dip correlated across every member (a planned failover is not an
//    anomaly of any single database);
//  - load-balancer rebalance: weights shift between two members and back,
//    temporarily decorrelating their trends while no database is anomalous.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dbc/common/rng.h"

namespace dbc {

/// Kinds of injected topology events.
enum class TopologyEventKind : int {
  kReplicaCrash = 0,   // member leaves; its collector feed disappears
  kReplicaJoin,        // new database id joins with cold history + ramp
  kPrimarySwitchover,  // role swap with a brief correlated dip
  kLbRebalance,        // temporary weight shift; nothing is anomalous
};

/// Number of topology event kinds.
inline constexpr size_t kNumTopologyEventKinds = 4;

/// Display name ("replica-crash", ...).
const std::string& TopologyEventKindName(TopologyEventKind kind);

/// One scheduled membership event. Interpretation of the fields per kind:
///  - kReplicaCrash: `db` leaves at `start`; duration is 0-length moment.
///  - kReplicaJoin: `db` (a brand-new id) enters at `start`; `duration` is
///    the warm-up ramp over which its traffic share climbs to full weight.
///  - kPrimarySwitchover: `db` becomes primary at `start` (`peer` is the
///    outgoing primary); `duration` is the correlated dip, `magnitude` its
///    relative depth.
///  - kLbRebalance: weight shifts from `peer` to `db` and back over
///    [start, start+duration); `magnitude` is the peak shifted fraction.
struct TopologyEvent {
  TopologyEventKind kind = TopologyEventKind::kReplicaCrash;
  size_t db = 0;
  size_t peer = 0;
  size_t start = 0;
  size_t duration = 0;
  double magnitude = 0.0;

  size_t end() const { return start + duration; }
  bool ActiveAt(size_t t) const { return t >= start && t < end(); }
};

/// Churn-schedule configuration.
struct TopologyFaultConfig {
  /// Events drawn per trace (replacement joins ride on top, see below).
  size_t max_events = 4;
  /// Enabled kinds; empty = all kinds.
  std::vector<TopologyEventKind> kinds;
  /// Relative sampling weight per enabled kind (empty = uniform).
  std::vector<double> kind_weights;
  /// Ticks kept churn-free at the head of the trace.
  size_t head_clearance = 80;
  /// Minimum quiet gap between consecutive events (unit-wide — real
  /// orchestrators serialize membership operations).
  size_t min_gap = 120;
  /// Warm-up ramp of a joining replica (ticks to full traffic weight).
  size_t join_ramp = 40;
  /// Ticks between a crash and the replacement replica's join.
  size_t replace_delay = 20;
  /// When true every crash is followed by a replacement join — the
  /// crash/replace cycle a managed fleet performs automatically.
  bool replace_after_crash = true;
  /// Correlated dip of a switchover: duration (ticks) and relative depth.
  size_t switchover_dip = 4;
  double switchover_dip_magnitude = 0.25;
  /// Rebalance ramp length and the peak fraction of weight shifted.
  size_t rebalance_ramp = 60;
  double rebalance_shift = 0.35;
  /// Crashes never shrink the unit below this many live members.
  size_t min_members = 3;
};

/// Draws a serialized event schedule against an initially `num_dbs`-member
/// unit (database 0 primary). Joining replicas receive fresh ids starting at
/// `num_dbs`, in event order. The returned schedule is start-ordered and
/// membership-consistent: crashed members are never re-targeted, switchover
/// promotes a live replica, rebalances pick two live members.
std::vector<TopologyEvent> ScheduleTopologyFaults(
    const TopologyFaultConfig& config, size_t num_dbs, size_t ticks, Rng& rng);

/// Total database slots a schedule touches: `num_dbs` plus one per join.
size_t TopologySlotCount(const std::vector<TopologyEvent>& events,
                         size_t num_dbs);

}  // namespace dbc
