#include "dbc/cloudsim/kpi.h"

#include <cassert>

namespace dbc {

const std::array<Kpi, kNumKpis>& AllKpis() {
  static const std::array<Kpi, kNumKpis> kAll = {
      Kpi::kComInsert,
      Kpi::kComUpdate,
      Kpi::kCpuUtilization,
      Kpi::kBufferPoolReadRequests,
      Kpi::kInnodbDataWrites,
      Kpi::kInnodbDataWritten,
      Kpi::kInnodbRowsDeleted,
      Kpi::kInnodbRowsInserted,
      Kpi::kInnodbRowsRead,
      Kpi::kInnodbRowsUpdated,
      Kpi::kRequestsPerSecond,
      Kpi::kTotalRequests,
      Kpi::kRealCapacity,
      Kpi::kTransactionsPerSecond,
  };
  return kAll;
}

const std::string& KpiName(Kpi kpi) {
  static const std::array<std::string, kNumKpis> kNames = {
      "Com Insert",
      "Com Update",
      "CPU Utilization",
      "BufferPool Read Requests",
      "Innodb Data Writes",
      "Innodb Data Written",
      "Innodb Rows Deleted",
      "Innodb Rows Inserted",
      "Innodb Rows Read",
      "Innodb Rows Updated",
      "Requests Per Second",
      "Total Requests",
      "Real Capacity",
      "Transactions Per Second",
  };
  return kNames[KpiIndex(kpi)];
}

KpiCorrelationType KpiCorrelation(Kpi kpi) {
  switch (kpi) {
    case Kpi::kComInsert:
    case Kpi::kComUpdate:
    case Kpi::kInnodbRowsDeleted:
    case Kpi::kInnodbRowsInserted:
    case Kpi::kTransactionsPerSecond:
      return KpiCorrelationType::kReplicaOnly;
    case Kpi::kCpuUtilization:
    case Kpi::kBufferPoolReadRequests:
    case Kpi::kInnodbDataWrites:
    case Kpi::kInnodbDataWritten:
    case Kpi::kInnodbRowsRead:
    case Kpi::kInnodbRowsUpdated:
    case Kpi::kRequestsPerSecond:
    case Kpi::kTotalRequests:
    case Kpi::kRealCapacity:
      return KpiCorrelationType::kPrimaryReplica;
  }
  assert(false && "unknown KPI");
  return KpiCorrelationType::kPrimaryReplica;
}

}  // namespace dbc
