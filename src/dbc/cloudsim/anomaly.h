// Anomaly taxonomy, scheduling, and per-tick effect synthesis.
//
// Anomaly types follow §II-C / §V: spike, level shift, concept drift,
// defective load balancing (Fig. 4), capacity fragmentation (Fig. 12),
// CPU-hogging resource skew (Fig. 13), and replication stall. Every event
// targets a single database (the paper only considers single-database
// failures, §II-C) and carries its own independent "foreign" signal process:
// a decorrelating time-varying multiplier, because a perfectly constant
// multiplier would survive min-max normalization and leave UKPIC intact.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dbc/cloudsim/instance_model.h"
#include "dbc/cloudsim/kpi.h"
#include "dbc/common/rng.h"

namespace dbc {

/// Kinds of injected abnormal issues.
enum class AnomalyKind : int {
  kSpike = 0,
  kLevelShift,
  kConceptDrift,
  kLoadBalanceSkew,
  kCapacityFragmentation,
  kCpuHog,
  kReplicationStall,
};

/// Number of anomaly kinds.
inline constexpr size_t kNumAnomalyKinds = 7;

/// Display name ("spike", ...).
const std::string& AnomalyKindName(AnomalyKind kind);

/// One scheduled abnormal issue on one database.
struct AnomalyEvent {
  AnomalyKind kind = AnomalyKind::kSpike;
  size_t db = 0;
  size_t start = 0;
  size_t duration = 1;
  /// Kind-specific severity in (0, 1].
  double magnitude = 0.5;

  size_t end() const { return start + duration; }
  bool ActiveAt(size_t t) const { return t >= start && t < end(); }
};

/// Injection configuration.
struct AnomalyScheduleConfig {
  /// Target fraction of (database, tick) points labeled abnormal.
  double target_ratio = 0.035;
  /// Enabled kinds; empty = all kinds.
  std::vector<AnomalyKind> kinds;
  /// Relative sampling weight per enabled kind (empty = spikes 4x, others
  /// 1x — point outliers are by far the most common production anomaly, and
  /// being short they still contribute only a minority of abnormal points).
  std::vector<double> kind_weights;
  /// Ticks kept anomaly-free at the head of the trace (warm-up).
  size_t head_clearance = 50;
  /// Minimum healthy gap between events on the same database.
  size_t min_gap = 40;
};

/// Draws a non-overlapping event schedule hitting ~target_ratio.
std::vector<AnomalyEvent> ScheduleAnomalies(const AnomalyScheduleConfig& config,
                                            size_t num_dbs, size_t ticks,
                                            Rng& rng);

/// The injected event that dominates incident window [begin, end): the one
/// overlapping it for the most ticks, ties broken toward the earlier start
/// and then the lower database id. Returns nullptr when no event overlaps.
/// This is the triage bench's ground-truth "true driver" label.
const AnomalyEvent* DominantEventInWindow(
    const std::vector<AnomalyEvent>& events, size_t begin, size_t end);

/// Turns scheduled events into per-tick KpiEffects and point labels.
class AnomalyInjector {
 public:
  AnomalyInjector(std::vector<AnomalyEvent> events, size_t num_dbs, Rng rng);

  /// Effect for database `db` at tick `t` (identity when healthy).
  KpiEffect EffectFor(size_t db, size_t t);

  /// Active load-balance skew at tick t: returns true and fills target/
  /// fraction when a kLoadBalanceSkew event is live.
  bool SkewAt(size_t t, size_t* target, double* fraction) const;

  /// True when `db` is inside any event at `t` (the ground-truth label).
  bool LabelAt(size_t db, size_t t) const;

  const std::vector<AnomalyEvent>& events() const { return events_; }

 private:
  struct EventState {
    AnomalyEvent event;
    OuProcess foreign;   // independent decorrelating factor (log-domain)
    Rng noise;           // fast per-tick component of the foreign signal
    double direction;    // +1 up, -1 down
  };

  std::vector<EventState> states_;
  std::vector<AnomalyEvent> events_;
};

/// Unlabeled temporal fluctuations (§II-D): short, small, self-recovering
/// deviations from maintenance tasks and imperfect balancing.
struct FluctuationConfig {
  double arrival_rate = 0.004;  // events per database per tick
  size_t min_duration = 1;
  size_t max_duration = 3;
  double max_relative = 0.25;   // at most +/-25% on the touched KPIs
  size_t max_kpis = 3;
};

/// Per-database fluctuation generator.
class FluctuationProcess {
 public:
  FluctuationProcess(const FluctuationConfig& config, Rng rng);

  /// Effect for the current tick (identity most of the time).
  KpiEffect Step();

 private:
  FluctuationConfig config_;
  Rng rng_;
  size_t remaining_ = 0;
  KpiEffect active_;
};

}  // namespace dbc
