#include "dbc/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dbc {

namespace {

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> TcpListen(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(ErrnoMessage("bind"));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  const Status status = SetNonBlocking(sock, true);
  if (!status.ok()) return status;
  return sock;
}

uint16_t LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Result<Socket> TcpConnect(uint16_t port, int timeout_ms) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IoError(ErrnoMessage("socket"));
  Status status = SetNonBlocking(sock, true);
  if (!status.ok()) return status;
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      return Status::IoError(ErrnoMessage("connect"));
    }
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return Status::IoError("connect timed out");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      errno = err;
      return Status::IoError(ErrnoMessage("connect"));
    }
  }
  status = SetNonBlocking(sock, false);
  if (!status.ok()) return status;
  // Frames are small and latency-sensitive: disable Nagle coalescing.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SetNonBlocking(const Socket& socket, bool enable) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return Status::IoError(ErrnoMessage("fcntl(F_GETFL)"));
  const int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(socket.fd(), F_SETFL, next) != 0) {
    return Status::IoError(ErrnoMessage("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

IoResult ReadSome(const Socket& socket, uint8_t* buf, size_t cap) {
  IoResult result;
  while (true) {
    const ssize_t n = ::read(socket.fd(), buf, cap);
    if (n > 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.eof = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.error = true;
    return result;
  }
}

IoResult WriteSome(const Socket& socket, const uint8_t* data, size_t size) {
  IoResult result;
  while (true) {
    const ssize_t n = ::send(socket.fd(), data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.error = true;
    return result;
  }
}

bool WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{socket.fd(), POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (ready == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace dbc
