// Server-side admission layer between the serving edge and the detection
// pipeline. NetIngestSource is the FrameHandler for the telemetry edge: it
// decodes batches on the serve thread, applies the overload policy against a
// bounded committed-batch queue, and hands committed work to the consumer
// thread (which feeds TelemetryIngestor / DetectionEngine) via TakeCommitted.
//
// Overload policy knob (DESIGN.md §11):
//   kShed    — over the watermark every batch gets a retryable NACK; nothing
//              is lost, senders back off and the queue drains (latency cost).
//   kDegrade — over the watermark the LOWEST-priority batches are admitted
//              and deliberately dropped (ACK-degraded: the sender must not
//              retransmit); higher priorities still commit (coverage cost).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dbc/cloudsim/telemetry.h"
#include "dbc/net/server.h"
#include "dbc/obs/metrics.h"

namespace dbc {

enum class OverloadPolicy : uint8_t { kShed, kDegrade };

/// Parses "shed"/"degrade"; returns false on anything else.
bool ParseOverloadPolicy(const std::string& text, OverloadPolicy* out);

struct NetIngestConfig {
  /// Committed batches buffered before the overload policy engages.
  size_t queue_high_watermark = 256;
  OverloadPolicy policy = OverloadPolicy::kShed;
  /// Under kDegrade, batches with priority strictly below this are dropped
  /// while the queue is over the watermark.
  uint8_t degrade_min_priority = 1;
};

/// One admitted telemetry batch, in arrival (commit) order.
struct CommittedBatch {
  uint64_t client_id = 0;
  uint8_t priority = 0;
  std::string unit;
  std::vector<TelemetrySample> samples;
};

class NetIngestSource : public FrameHandler {
 public:
  explicit NetIngestSource(NetIngestConfig config);

  /// Serve-thread only (NetServer contract).
  FrameDecision OnFrame(const FrameContext& context,
                        const Frame& frame) override;

  /// Drains every committed batch, in commit order. Any thread.
  std::vector<CommittedBatch> TakeCommitted();

  /// Committed batches currently waiting for the consumer. Any thread.
  size_t queued() const;

  size_t committed_total() const;
  size_t shed_total() const;
  size_t degraded_total() const;
  size_t samples_committed_total() const;

  /// Creates dbc_net_ingest_* metrics on `registry`.
  void EnableObservability(MetricsRegistry* registry);

  const NetIngestConfig& config() const { return config_; }

 private:
  NetIngestConfig config_;

  mutable std::mutex mu_;
  std::deque<CommittedBatch> queue_;
  size_t committed_total_ = 0;
  size_t shed_total_ = 0;
  size_t degraded_total_ = 0;
  size_t samples_committed_total_ = 0;

  Counter* committed_metric_ = nullptr;
  Counter* shed_metric_ = nullptr;
  Counter* degraded_metric_ = nullptr;
  Counter* samples_metric_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
};

}  // namespace dbc
