#include "dbc/net/wire.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace dbc {

namespace {

/// Byte-level little-endian writers. The wire format is explicitly
/// little-endian regardless of host order.
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked sequential reader: every Read* either fills its output
/// from bytes it provably owns or returns false. No decode path touches the
/// underlying buffer directly, so the codecs cannot over-read by
/// construction.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kTriageResult);
}

}  // namespace

const std::string& WireVerdictName(WireVerdict verdict) {
  static const std::array<std::string, 9> kNames = {
      "frame",     "need-more", "bad-magic",         "bad-version",
      "bad-type",  "oversized", "bad-crc",           "malformed-payload",
      "poisoned",
  };
  return kNames[static_cast<size_t>(verdict)];
}

bool WireVerdictFatal(WireVerdict verdict) {
  switch (verdict) {
    case WireVerdict::kFrame:
    case WireVerdict::kNeedMore:
      return false;
    case WireVerdict::kBadMagic:
    case WireVerdict::kBadVersion:
    case WireVerdict::kBadType:
    case WireVerdict::kOversized:
    case WireVerdict::kBadCrc:
    case WireVerdict::kMalformedPayload:
    case WireVerdict::kPoisoned:
      return true;
  }
  return true;
}

FrameDecoder::FrameDecoder(size_t max_payload) : max_payload_(max_payload) {}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  if (poisoned_ || size == 0) return;
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::Feed(const std::vector<uint8_t>& data) {
  Feed(data.data(), data.size());
}

WireVerdict FrameDecoder::Next(Frame* out) {
  if (poisoned_) return WireVerdict::kPoisoned;
  const size_t available = buffer_.size() - consumed_;
  if (available < kWireHeaderSize) return WireVerdict::kNeedMore;

  PayloadReader header(buffer_.data() + consumed_, kWireHeaderSize);
  uint32_t magic = 0, payload_len = 0, payload_crc = 0;
  uint8_t version = 0, type = 0, flags = 0, priority = 0;
  uint64_t seq = 0;
  // The header reader cannot fail — kWireHeaderSize bytes are present — but
  // each field is still validated before the length field is trusted.
  header.ReadU32(&magic);
  header.ReadU8(&version);
  header.ReadU8(&type);
  header.ReadU8(&flags);
  header.ReadU8(&priority);
  header.ReadU64(&seq);
  header.ReadU32(&payload_len);
  header.ReadU32(&payload_crc);

  if (magic != kWireMagic) {
    poisoned_ = true;
    return WireVerdict::kBadMagic;
  }
  if (version != kWireVersion) {
    poisoned_ = true;
    return WireVerdict::kBadVersion;
  }
  if (!ValidFrameType(type)) {
    poisoned_ = true;
    return WireVerdict::kBadType;
  }
  // Length is validated BEFORE any allocation or wait: an attacker-supplied
  // 4 GiB length field costs nothing.
  if (payload_len > max_payload_) {
    poisoned_ = true;
    return WireVerdict::kOversized;
  }
  if (available < kWireHeaderSize + payload_len) return WireVerdict::kNeedMore;

  const uint8_t* payload = buffer_.data() + consumed_ + kWireHeaderSize;
  if (Crc32(payload, payload_len) != payload_crc) {
    poisoned_ = true;
    return WireVerdict::kBadCrc;
  }

  out->header.version = version;
  out->header.type = static_cast<FrameType>(type);
  out->header.flags = flags;
  out->header.priority = priority;
  out->header.seq = seq;
  out->header.payload_len = payload_len;
  out->header.payload_crc = payload_crc;
  out->payload.assign(payload, payload + payload_len);

  consumed_ += kWireHeaderSize + payload_len;
  // Compact once the dead prefix dominates, keeping the buffer bounded by
  // one frame plus one read chunk.
  if (consumed_ > (1u << 16) && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  ++frames_decoded_;
  return WireVerdict::kFrame;
}

std::vector<uint8_t> EncodeFrame(FrameType type, uint8_t flags,
                                 uint8_t priority, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU8(&out, flags);
  PutU8(&out, priority);
  PutU64(&out, seq);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeHelloPayload(const HelloPayload& hello) {
  std::vector<uint8_t> out;
  PutU64(&out, hello.client_id);
  return out;
}

bool DecodeHelloPayload(const std::vector<uint8_t>& bytes, HelloPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  if (!reader.ReadU64(&out->client_id)) return false;
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodeTelemetryBatchPayload(
    const TelemetryBatchPayload& batch) {
  std::vector<uint8_t> out;
  const size_t unit_len = std::min(batch.unit.size(), kWireMaxUnitName);
  const size_t count = std::min(batch.samples.size(), kWireMaxBatchSamples);
  out.reserve(4 + unit_len + count * (8 + 4 + 8 * kNumKpis));
  PutU16(&out, static_cast<uint16_t>(unit_len));
  out.insert(out.end(), batch.unit.begin(),
             batch.unit.begin() + static_cast<ptrdiff_t>(unit_len));
  PutU16(&out, static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const TelemetrySample& sample = batch.samples[i];
    PutU64(&out, sample.tick);
    PutU32(&out, static_cast<uint32_t>(sample.db));
    for (double v : sample.values) PutF64(&out, v);
  }
  return out;
}

bool DecodeTelemetryBatchPayload(const std::vector<uint8_t>& bytes,
                                 TelemetryBatchPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  uint16_t unit_len = 0;
  if (!reader.ReadU16(&unit_len)) return false;
  if (unit_len > kWireMaxUnitName) return false;
  if (!reader.ReadBytes(unit_len, &out->unit)) return false;
  uint16_t count = 0;
  if (!reader.ReadU16(&count)) return false;
  if (count > kWireMaxBatchSamples) return false;
  out->samples.clear();
  out->samples.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    TelemetrySample sample;
    uint64_t tick = 0;
    uint32_t db = 0;
    if (!reader.ReadU64(&tick) || !reader.ReadU32(&db)) return false;
    sample.tick = static_cast<size_t>(tick);
    sample.db = static_cast<size_t>(db);
    for (size_t k = 0; k < kNumKpis; ++k) {
      if (!reader.ReadF64(&sample.values[k])) return false;
    }
    out->samples.push_back(sample);
  }
  // Trailing junk means the producer and this decoder disagree on the
  // format: reject rather than silently ignore.
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodeAlertBatchPayload(const AlertBatchPayload& batch) {
  std::vector<uint8_t> out;
  const size_t count = std::min(batch.records.size(), kWireMaxAlertRecords);
  PutU16(&out, static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const std::string& record = batch.records[i];
    const size_t len = std::min(record.size(), kWireMaxAlertRecordBytes);
    PutU32(&out, static_cast<uint32_t>(len));
    out.insert(out.end(), record.begin(),
               record.begin() + static_cast<ptrdiff_t>(len));
  }
  return out;
}

bool DecodeAlertBatchPayload(const std::vector<uint8_t>& bytes,
                             AlertBatchPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  uint16_t count = 0;
  if (!reader.ReadU16(&count)) return false;
  if (count > kWireMaxAlertRecords) return false;
  out->records.clear();
  out->records.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!reader.ReadU32(&len)) return false;
    if (len > kWireMaxAlertRecordBytes) return false;
    std::string record;
    if (!reader.ReadBytes(len, &record)) return false;
    out->records.push_back(std::move(record));
  }
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodeTriageQueryPayload(
    const TriageQueryPayload& query) {
  std::vector<uint8_t> out;
  PutU64(&out, query.window_begin);
  PutU64(&out, query.window_end);
  PutU32(&out, query.top_k);
  return out;
}

bool DecodeTriageQueryPayload(const std::vector<uint8_t>& bytes,
                              TriageQueryPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  if (!reader.ReadU64(&out->window_begin)) return false;
  if (!reader.ReadU64(&out->window_end)) return false;
  if (out->window_end < out->window_begin) return false;
  if (!reader.ReadU32(&out->top_k)) return false;
  if (out->top_k > kWireMaxTriageTopK) return false;
  // A reply carries at most kWireMaxTriageEntries entries; clamp here so an
  // in-range but oversized top_k can never be silently truncated at encode.
  out->top_k = std::min(out->top_k,
                        static_cast<uint32_t>(kWireMaxTriageEntries));
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodeTriageResultPayload(
    const TriageResultPayload& result) {
  std::vector<uint8_t> out;
  const size_t count = std::min(result.entries.size(), kWireMaxTriageEntries);
  PutU16(&out, static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const TriageEntryWire& entry = result.entries[i];
    const size_t unit_len = std::min(entry.unit.size(), kWireMaxUnitName);
    PutU16(&out, static_cast<uint16_t>(unit_len));
    out.insert(out.end(), entry.unit.begin(),
               entry.unit.begin() + static_cast<ptrdiff_t>(unit_len));
    PutU32(&out, entry.db);
    PutU32(&out, entry.kpi);
    PutF64(&out, entry.ks);
    PutF64(&out, entry.volume);
    PutF64(&out, entry.severity);
  }
  PutU64(&out, result.series_swept);
  PutU64(&out, result.series_scored);
  PutU64(&out, result.series_skipped);
  PutF64(&out, result.fleet_abnormal_rate);
  return out;
}

bool DecodeTriageResultPayload(const std::vector<uint8_t>& bytes,
                               TriageResultPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  uint16_t count = 0;
  if (!reader.ReadU16(&count)) return false;
  if (count > kWireMaxTriageEntries) return false;
  out->entries.clear();
  out->entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    TriageEntryWire entry;
    uint16_t unit_len = 0;
    if (!reader.ReadU16(&unit_len)) return false;
    if (unit_len > kWireMaxUnitName) return false;
    if (!reader.ReadBytes(unit_len, &entry.unit)) return false;
    if (!reader.ReadU32(&entry.db) || !reader.ReadU32(&entry.kpi)) {
      return false;
    }
    if (!reader.ReadF64(&entry.ks) || !reader.ReadF64(&entry.volume) ||
        !reader.ReadF64(&entry.severity)) {
      return false;
    }
    out->entries.push_back(std::move(entry));
  }
  if (!reader.ReadU64(&out->series_swept)) return false;
  if (!reader.ReadU64(&out->series_scored)) return false;
  if (!reader.ReadU64(&out->series_skipped)) return false;
  if (!reader.ReadF64(&out->fleet_abnormal_rate)) return false;
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodeNackPayload(const NackPayload& nack) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(nack.reason));
  PutU32(&out, nack.retry_after_ms);
  return out;
}

bool DecodeNackPayload(const std::vector<uint8_t>& bytes, NackPayload* out) {
  PayloadReader reader(bytes.data(), bytes.size());
  uint8_t reason = 0;
  if (!reader.ReadU8(&reason)) return false;
  if (reason < static_cast<uint8_t>(NackReason::kOverload) ||
      reason > static_cast<uint8_t>(NackReason::kUnsupported)) {
    return false;
  }
  out->reason = static_cast<NackReason>(reason);
  if (!reader.ReadU32(&out->retry_after_ms)) return false;
  return reader.remaining() == 0;
}

}  // namespace dbc
