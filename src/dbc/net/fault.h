// Deterministic client-side network chaos for the serving edge. The injector
// perturbs the byte stream a NetClient emits — partial writes, mid-frame
// disconnects, leading garbage, stalled reply reading — without ever touching
// the application payloads. Combined with the client's retransmit machinery
// the invariant under chaos is: faults may DELAY a batch, they can never
// corrupt it or drop a committed tick (net_e2e_test proves this bit-exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>

namespace dbc {

/// One perturbation choice for one outgoing frame.
enum class FaultKind : uint8_t {
  kNone = 0,
  kPartialWrite,        // dribble the frame out in tiny chunks
  kMidFrameDisconnect,  // write a prefix of the frame, then close
  kGarbage,             // prepend garbage bytes (poisons the connection)
  kStall,               // sit on the reply socket before reading
};

struct NetFaultConfig {
  uint64_t seed = 1;
  /// Probability that any given send is perturbed at all.
  double fault_rate = 0.0;
  // Which perturbations are in the rotation.
  bool partial_writes = true;
  bool mid_frame_disconnects = true;
  bool garbage_bytes = true;
  bool stalled_reads = true;
  /// How long a kStall fault sits before reading replies. Keep well under
  /// the server's idle timeout: a stall should look slow, not dead.
  uint32_t stall_ms = 20;
};

/// Seeded chaos source; every decision derives from the constructor seed so a
/// failing run replays exactly.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultConfig config);

  /// Rolls the fault (if any) to apply to the next outgoing frame.
  FaultKind NextFault();

  /// Deterministic chunk size for a partial write, in [1, 7].
  size_t NextChunkSize();
  /// Deterministic prefix length for a mid-frame disconnect, in [1, cap).
  size_t NextPrefixLength(size_t frame_size);
  /// Fills `out` with `n` garbage bytes whose first four can never spell the
  /// frame magic.
  void NextGarbage(uint8_t* out, size_t n);

  const NetFaultConfig& config() const { return config_; }

  size_t injected_partial() const { return injected_partial_; }
  size_t injected_disconnect() const { return injected_disconnect_; }
  size_t injected_garbage() const { return injected_garbage_; }
  size_t injected_stall() const { return injected_stall_; }
  size_t injected_total() const {
    return injected_partial_ + injected_disconnect_ + injected_garbage_ +
           injected_stall_;
  }

 private:
  NetFaultConfig config_;
  std::mt19937_64 rng_;
  size_t injected_partial_ = 0;
  size_t injected_disconnect_ = 0;
  size_t injected_garbage_ = 0;
  size_t injected_stall_ = 0;
};

}  // namespace dbc
