#include "dbc/net/ingest_source.h"

#include <utility>

namespace dbc {

bool ParseOverloadPolicy(const std::string& text, OverloadPolicy* out) {
  if (text == "shed") {
    *out = OverloadPolicy::kShed;
    return true;
  }
  if (text == "degrade") {
    *out = OverloadPolicy::kDegrade;
    return true;
  }
  return false;
}

NetIngestSource::NetIngestSource(NetIngestConfig config) : config_(config) {}

FrameDecision NetIngestSource::OnFrame(const FrameContext& context,
                                       const Frame& frame) {
  if (frame.header.type != FrameType::kTelemetryBatch) {
    // The ingest edge speaks telemetry only; an alert batch here is a
    // misdirected client.
    return FrameDecision::kNackFatal;
  }
  TelemetryBatchPayload batch;
  if (!DecodeTelemetryBatchPayload(frame.payload, &batch)) {
    return FrameDecision::kNackFatal;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= config_.queue_high_watermark) {
    if (config_.policy == OverloadPolicy::kShed) {
      ++shed_total_;
      Inc(shed_metric_);
      return FrameDecision::kNackOverload;
    }
    if (context.priority < config_.degrade_min_priority) {
      // Deliberate loss: the batch is acknowledged (no retransmit) and
      // dropped before the pipeline ever sees it.
      ++degraded_total_;
      Inc(degraded_metric_);
      return FrameDecision::kAckDegraded;
    }
  }
  CommittedBatch committed;
  committed.client_id = context.client_id;
  committed.priority = context.priority;
  committed.unit = std::move(batch.unit);
  committed.samples = std::move(batch.samples);
  const size_t samples = committed.samples.size();
  queue_.push_back(std::move(committed));
  ++committed_total_;
  samples_committed_total_ += samples;
  Inc(committed_metric_);
  Inc(samples_metric_, samples);
  Set(queue_gauge_, static_cast<double>(queue_.size()));
  return FrameDecision::kAck;
}

std::vector<CommittedBatch> NetIngestSource::TakeCommitted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CommittedBatch> out(std::make_move_iterator(queue_.begin()),
                                  std::make_move_iterator(queue_.end()));
  queue_.clear();
  Set(queue_gauge_, 0.0);
  return out;
}

size_t NetIngestSource::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t NetIngestSource::committed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_total_;
}

size_t NetIngestSource::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

size_t NetIngestSource::degraded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_total_;
}

size_t NetIngestSource::samples_committed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_committed_total_;
}

void NetIngestSource::EnableObservability(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  committed_metric_ = registry->GetCounter("dbc_net_ingest_batches_total",
                                           {{"outcome", "committed"}});
  shed_metric_ = registry->GetCounter("dbc_net_ingest_batches_total",
                                      {{"outcome", "shed"}});
  degraded_metric_ = registry->GetCounter("dbc_net_ingest_batches_total",
                                          {{"outcome", "degraded"}});
  samples_metric_ =
      registry->GetCounter("dbc_net_ingest_samples_committed_total");
  queue_gauge_ = registry->GetGauge("dbc_net_ingest_queue_batches");
}

}  // namespace dbc
