// Thin RAII wrapper over POSIX TCP sockets plus the handful of loopback
// helpers the serving edge needs. Everything binds/dials 127.0.0.1 only: the
// edge is exercised in-process (tests, benches) and an accidental external
// bind would be a security hole, not a feature.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "dbc/common/status.h"

namespace dbc {

/// Owning file-descriptor handle (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking read/write attempt.
struct IoResult {
  size_t bytes = 0;
  bool would_block = false;  // EAGAIN/EWOULDBLOCK: retry after poll
  bool eof = false;          // orderly shutdown by the peer (read only)
  bool error = false;        // connection-fatal errno (reset, pipe, ...)
};

/// Creates a non-blocking loopback listener on `port` (0 = ephemeral).
Result<Socket> TcpListen(uint16_t port, int backlog = 64);

/// The locally bound port of a listening or connected socket.
uint16_t LocalPort(const Socket& socket);

/// Blocking loopback connect with a deadline; the returned socket is left in
/// blocking mode (clients poll explicitly where they need timeouts).
Result<Socket> TcpConnect(uint16_t port, int timeout_ms);

/// Switches O_NONBLOCK on or off.
Status SetNonBlocking(const Socket& socket, bool enable);

/// One read(2) attempt of up to `cap` bytes, EINTR-retried.
IoResult ReadSome(const Socket& socket, uint8_t* buf, size_t cap);

/// One write(2) attempt, EINTR-retried; SIGPIPE suppressed.
IoResult WriteSome(const Socket& socket, const uint8_t* data, size_t size);

/// Waits until the socket is readable (POLLIN) or `timeout_ms` elapses.
/// Returns true when readable.
bool WaitReadable(const Socket& socket, int timeout_ms);

}  // namespace dbc
