#include "dbc/net/egress.h"

#include <algorithm>
#include <utility>

namespace dbc {

NetAlertSink::NetAlertSink(NetAlertSinkConfig config, NetClient* client)
    : config_(config), client_(client) {}

void NetAlertSink::Publish(const std::vector<Alert>& alerts) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Alert& alert : alerts) {
    if (spool_.size() >= config_.spool_capacity) {
      // Bounded spool: evict oldest so a dead collector costs memory-capped
      // history, never unbounded growth or a blocked drain thread.
      spool_.pop_front();
      ++dropped_total_;
      Inc(dropped_metric_);
    }
    spool_.push_back(FormatAlertJson(alert));
    ++published_total_;
    Inc(published_metric_);
  }
  Set(spool_gauge_, static_cast<double>(spool_.size()));
}

size_t NetAlertSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

Status NetAlertSink::Flush() {
  while (true) {
    AlertBatchPayload batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (spool_.empty()) return Status::Ok();
      const size_t take = std::min(
          {spool_.size(), config_.batch_records, kWireMaxAlertRecords});
      for (size_t i = 0; i < take; ++i) {
        batch.records.push_back(spool_[i]);
      }
    }
    const Result<SendOutcome> sent = client_->Send(
        FrameType::kAlertBatch, config_.priority,
        EncodeAlertBatchPayload(batch));
    if (!sent.ok()) return sent.status();
    std::lock_guard<std::mutex> lock(mu_);
    // Only now remove the shipped prefix: a failed send leaves the spool
    // intact for the next flush (at-least-once; the collector session layer
    // dedups retransmitted frames, so records never double-apply).
    spool_.erase(spool_.begin(),
                 spool_.begin() + static_cast<ptrdiff_t>(batch.records.size()));
    records_sent_total_ += batch.records.size();
    ++flushes_total_;
    Inc(sent_metric_, batch.records.size());
    Set(spool_gauge_, static_cast<double>(spool_.size()));
  }
}

size_t NetAlertSink::spooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spool_.size();
}

size_t NetAlertSink::published_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_total_;
}

size_t NetAlertSink::records_sent_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_sent_total_;
}

size_t NetAlertSink::flushes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_total_;
}

void NetAlertSink::EnableObservability(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  published_metric_ = registry->GetCounter("dbc_net_egress_alerts_total",
                                           {{"outcome", "spooled"}});
  dropped_metric_ = registry->GetCounter("dbc_net_egress_alerts_total",
                                         {{"outcome", "evicted"}});
  sent_metric_ = registry->GetCounter("dbc_net_egress_alerts_total",
                                      {{"outcome", "sent"}});
  spool_gauge_ = registry->GetGauge("dbc_net_egress_spool_alerts");
}

FrameDecision AlertCollector::OnFrame(const FrameContext& context,
                                      const Frame& frame) {
  (void)context;
  if (frame.header.type != FrameType::kAlertBatch) {
    return FrameDecision::kNackFatal;
  }
  AlertBatchPayload batch;
  if (!DecodeAlertBatchPayload(frame.payload, &batch)) {
    return FrameDecision::kNackFatal;
  }
  std::lock_guard<std::mutex> lock(mu_);
  records_total_ += batch.records.size();
  for (std::string& record : batch.records) {
    records_.push_back(std::move(record));
  }
  return FrameDecision::kAck;
}

std::vector<std::string> AlertCollector::TakeRecords() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out = std::move(records_);
  records_.clear();
  return out;
}

size_t AlertCollector::records_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_total_;
}

}  // namespace dbc
