// Alert egress over the serving edge. NetAlertSink plugs into
// DetectionEngine::AddSink and spools drained alerts locally (bounded — the
// engine's drain thread is never blocked by a slow collector); Flush()
// ships the spool as kAlertBatch frames through a NetClient, whose
// retry-with-exponential-backoff machinery rides out transient collector
// failures. AlertCollector is the matching server-side FrameHandler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dbc/common/status.h"
#include "dbc/dbcatcher/alert_sink.h"
#include "dbc/net/client.h"
#include "dbc/net/server.h"
#include "dbc/obs/metrics.h"

namespace dbc {

struct NetAlertSinkConfig {
  /// Alerts spooled before the oldest are evicted (dropped() back-pressure).
  size_t spool_capacity = 8192;
  /// Records per kAlertBatch frame (also capped by kWireMaxAlertRecords).
  size_t batch_records = 256;
  /// Priority stamped on egress frames (alerts outrank telemetry filler).
  uint8_t priority = 4;
};

/// Engine-facing sink that spools alerts and ships them over a NetClient.
/// Publish (engine drain thread) and Flush (egress thread) may race; the
/// spool is mutex-guarded. The client itself is Flush-thread-only.
class NetAlertSink : public AlertSink {
 public:
  NetAlertSink(NetAlertSinkConfig config, NetClient* client);

  void Publish(const std::vector<Alert>& alerts) override;
  size_t dropped() const override;

  /// Ships every spooled record. Returns the first delivery failure (spool
  /// keeps the unshipped remainder for the next flush).
  Status Flush();

  size_t spooled() const;
  size_t published_total() const;
  size_t records_sent_total() const;
  size_t flushes_total() const;

  /// Creates dbc_net_egress_* metrics on `registry`.
  void EnableObservability(MetricsRegistry* registry);

 private:
  NetAlertSinkConfig config_;
  NetClient* client_;

  mutable std::mutex mu_;
  std::deque<std::string> spool_;  // FormatAlertJson records
  size_t published_total_ = 0;
  size_t dropped_total_ = 0;
  size_t records_sent_total_ = 0;
  size_t flushes_total_ = 0;

  Counter* published_metric_ = nullptr;
  Counter* dropped_metric_ = nullptr;
  Counter* sent_metric_ = nullptr;
  Gauge* spool_gauge_ = nullptr;
};

/// Server-side alert collector: accepts kAlertBatch frames, accumulates the
/// JSON records in arrival order. OnFrame runs on the serve thread; the
/// accessors are safe from anywhere.
class AlertCollector : public FrameHandler {
 public:
  FrameDecision OnFrame(const FrameContext& context,
                        const Frame& frame) override;

  /// Drains collected records in arrival order.
  std::vector<std::string> TakeRecords();
  size_t records_total() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> records_;
  size_t records_total_ = 0;
};

}  // namespace dbc
