#include "dbc/net/fault.h"

#include <vector>

#include "dbc/net/wire.h"

namespace dbc {

NetFaultInjector::NetFaultInjector(NetFaultConfig config)
    : config_(config), rng_(config.seed) {}

FaultKind NetFaultInjector::NextFault() {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) >= config_.fault_rate) return FaultKind::kNone;
  std::vector<FaultKind> menu;
  if (config_.partial_writes) menu.push_back(FaultKind::kPartialWrite);
  if (config_.mid_frame_disconnects) {
    menu.push_back(FaultKind::kMidFrameDisconnect);
  }
  if (config_.garbage_bytes) menu.push_back(FaultKind::kGarbage);
  if (config_.stalled_reads) menu.push_back(FaultKind::kStall);
  if (menu.empty()) return FaultKind::kNone;
  std::uniform_int_distribution<size_t> pick(0, menu.size() - 1);
  const FaultKind kind = menu[pick(rng_)];
  switch (kind) {
    case FaultKind::kPartialWrite: ++injected_partial_; break;
    case FaultKind::kMidFrameDisconnect: ++injected_disconnect_; break;
    case FaultKind::kGarbage: ++injected_garbage_; break;
    case FaultKind::kStall: ++injected_stall_; break;
    case FaultKind::kNone: break;
  }
  return kind;
}

size_t NetFaultInjector::NextChunkSize() {
  std::uniform_int_distribution<size_t> d(1, 7);
  return d(rng_);
}

size_t NetFaultInjector::NextPrefixLength(size_t frame_size) {
  // Always strictly shorter than the frame so the cut really lands mid-frame.
  const size_t cap = frame_size > 1 ? frame_size - 1 : 1;
  std::uniform_int_distribution<size_t> d(1, cap);
  return d(rng_);
}

void NetFaultInjector::NextGarbage(uint8_t* out, size_t n) {
  std::uniform_int_distribution<int> d(0, 255);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(d(rng_));
  }
  // Make sure the garbage cannot accidentally resynchronise as a valid
  // header: corrupt the first magic byte if the roll happened to match.
  if (n > 0 && out[0] == static_cast<uint8_t>(kWireMagic & 0xFF)) {
    out[0] ^= 0xFF;
  }
}

}  // namespace dbc
