#include "dbc/net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <utility>

namespace dbc {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

NetServer::NetServer(NetServerConfig config, FrameHandler* handler)
    : config_(config), handler_(handler) {}

NetServer::~NetServer() = default;

Status NetServer::Listen() {
  Result<Socket> listener = TcpListen(config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());
  port_ = LocalPort(listener_);
  return Status::Ok();
}

void NetServer::EnableObservability(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  metrics_.accepted = registry->GetCounter("dbc_net_connections_total",
                                           {{"event", "accepted"}});
  metrics_.rejected_flood = registry->GetCounter("dbc_net_connections_total",
                                                 {{"event", "rejected-flood"}});
  metrics_.closed_peer =
      registry->GetCounter("dbc_net_closed_total", {{"reason", "peer"}});
  metrics_.reaped_idle =
      registry->GetCounter("dbc_net_closed_total", {{"reason", "idle"}});
  metrics_.reaped_slow =
      registry->GetCounter("dbc_net_closed_total", {{"reason", "slow"}});
  metrics_.reaped_malformed =
      registry->GetCounter("dbc_net_closed_total", {{"reason", "malformed"}});
  metrics_.frames_hello =
      registry->GetCounter("dbc_net_frames_total", {{"type", "hello"}});
  metrics_.frames_telemetry =
      registry->GetCounter("dbc_net_frames_total", {{"type", "telemetry"}});
  metrics_.frames_alert =
      registry->GetCounter("dbc_net_frames_total", {{"type", "alert"}});
  metrics_.frames_triage =
      registry->GetCounter("dbc_net_frames_total", {{"type", "triage"}});
  metrics_.frames_malformed =
      registry->GetCounter("dbc_net_frames_malformed_total");
  metrics_.triage_served = registry->GetCounter("dbc_triage_served_total");
  metrics_.triage_rejected = registry->GetCounter("dbc_triage_rejected_total");
  metrics_.acks =
      registry->GetCounter("dbc_net_replies_total", {{"kind", "ack"}});
  metrics_.acks_degraded = registry->GetCounter("dbc_net_replies_total",
                                                {{"kind", "ack-degraded"}});
  metrics_.nacks_overload = registry->GetCounter(
      "dbc_net_replies_total", {{"kind", "nack-overload"}});
  metrics_.nacks_fatal =
      registry->GetCounter("dbc_net_replies_total", {{"kind", "nack-fatal"}});
  metrics_.duplicates = registry->GetCounter("dbc_net_duplicates_total");
  metrics_.bytes_read = registry->GetCounter("dbc_net_bytes_total",
                                             {{"direction", "read"}});
  metrics_.bytes_written = registry->GetCounter("dbc_net_bytes_total",
                                                {{"direction", "written"}});
  metrics_.decode_seconds =
      registry->GetHistogram("dbc_net_frame_decode_seconds");
  metrics_.connections = registry->GetGauge("dbc_net_connections");
  metrics_.buffered_bytes = registry->GetGauge("dbc_net_buffered_bytes");
  observed_ = true;
}

size_t NetServer::PollOnce(int timeout_ms) {
  triage_this_poll_ = 0;
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back({listener_.fd(), POLLIN, 0});
  for (const auto& [fd, conn] : conns_) {
    short events = 0;
    // A quarantined connection only flushes its farewell NACK.
    if (!conn.quarantined) events |= POLLIN;
    if (conn.out.size() > conn.out_offset) events |= POLLOUT;
    fds.push_back({fd, events, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  size_t dispatched = 0;
  if (ready > 0) {
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    for (size_t i = 1; i < fds.size(); ++i) {
      const auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if ((fds[i].revents & POLLOUT) != 0) FlushWrites(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn.quarantined) {
        dispatched += ServiceReads(conn);
      }
    }
  }
  ReapDeadConnections();
  RecountBuffered();
  Set(metrics_.connections, static_cast<double>(conns_.size()));
  Set(metrics_.buffered_bytes, static_cast<double>(buffered_bytes_));
  return dispatched;
}

void NetServer::Run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    PollOnce(/*timeout_ms=*/20);
  }
}

void NetServer::AcceptPending() {
  while (true) {
    Socket conn(::accept(listener_.fd(), nullptr, nullptr));
    if (!conn.valid()) return;  // EAGAIN or transient: next cycle
    if (conns_.size() >= config_.max_connections) {
      // Flood guard: shed at accept time, before any buffer exists for the
      // connection. The close is the backpressure signal.
      ++rejected_total_;
      Inc(metrics_.rejected_flood);
      continue;
    }
    if (!SetNonBlocking(conn, true).ok()) continue;
    const int fd = conn.fd();
    conns_.emplace(fd, Conn(std::move(conn), config_.max_payload, Now()));
    connections_count_ = conns_.size();
    ++accepted_total_;
    Inc(metrics_.accepted);
  }
}

size_t NetServer::ServiceReads(Conn& conn) {
  uint8_t chunk[kReadChunk];
  size_t dispatched = 0;
  while (true) {
    const IoResult io = ReadSome(conn.socket, chunk, sizeof(chunk));
    if (io.bytes > 0) {
      conn.last_activity = Now();
      Inc(metrics_.bytes_read, io.bytes);
      conn.decoder.Feed(chunk, io.bytes);
      while (true) {
        Frame frame;
        Stopwatch decode_watch;
        const WireVerdict verdict = conn.decoder.Next(&frame);
        if (verdict == WireVerdict::kNeedMore) break;
        if (verdict != WireVerdict::kFrame) {
          ++malformed_frames_total_;
          Inc(metrics_.frames_malformed);
          Quarantine(conn, NackReason::kMalformed, /*seq=*/0);
          return dispatched;
        }
        HandleFrame(conn, frame);
        if (observed_) {
          Observe(metrics_.decode_seconds, decode_watch.ElapsedSeconds());
        }
        ++dispatched;
        if (conn.quarantined) return dispatched;
      }
      continue;
    }
    if (io.would_block) return dispatched;
    // EOF or a connection-fatal errno: drop the connection.
    conn.quarantined = true;
    conn.out.clear();
    conn.out_offset = 0;
    Inc(metrics_.closed_peer);
    return dispatched;
  }
}

void NetServer::HandleFrame(Conn& conn, const Frame& frame) {
  switch (frame.header.type) {
    case FrameType::kHello: {
      HelloPayload hello;
      if (!DecodeHelloPayload(frame.payload, &hello) || hello.client_id == 0) {
        ++malformed_frames_total_;
        Inc(metrics_.frames_malformed);
        Quarantine(conn, NackReason::kMalformed, frame.header.seq);
        return;
      }
      Inc(metrics_.frames_hello);
      conn.client_id = hello.client_id;
      sessions_.try_emplace(hello.client_id);
      SendReply(conn, FrameType::kAck, 0, frame.header.seq, {});
      Inc(metrics_.acks);
      return;
    }
    case FrameType::kTelemetryBatch:
    case FrameType::kAlertBatch: {
      Inc(frame.header.type == FrameType::kTelemetryBatch
              ? metrics_.frames_telemetry
              : metrics_.frames_alert);
      if (conn.client_id == 0) {
        // Data before Hello: no session to dedup against — protocol abuse.
        Quarantine(conn, NackReason::kMalformed, frame.header.seq);
        return;
      }
      Session& session = sessions_[conn.client_id];
      if (frame.header.seq < session.next_seq) {
        // Retransmission of an already-applied frame (the ACK was lost in a
        // disconnect): re-ACK without re-applying — exactly-once semantics.
        ++duplicates_total_;
        Inc(metrics_.duplicates);
        SendReply(conn, FrameType::kAck, 0, frame.header.seq, {});
        Inc(metrics_.acks);
        return;
      }
      if (frame.header.seq > session.next_seq) {
        // A gap is impossible over one TCP stream unless the client is
        // broken; admitting it would silently drop the missing frames.
        Quarantine(conn, NackReason::kMalformed, frame.header.seq);
        return;
      }
      if (buffered_bytes_ > config_.global_buffer_high_watermark) {
        // Global watermark: protect server memory before the handler ever
        // sees the frame. Retryable — the client backs off and resends.
        NackPayload nack{NackReason::kOverload, config_.retry_after_ms};
        SendReply(conn, FrameType::kNack, 0, frame.header.seq,
                  EncodeNackPayload(nack));
        Inc(metrics_.nacks_overload);
        return;
      }
      FrameContext context;
      context.client_id = conn.client_id;
      context.seq = frame.header.seq;
      context.priority = frame.header.priority;
      switch (handler_->OnFrame(context, frame)) {
        case FrameDecision::kAck:
          session.next_seq = frame.header.seq + 1;
          SendReply(conn, FrameType::kAck, 0, frame.header.seq, {});
          Inc(metrics_.acks);
          return;
        case FrameDecision::kAckDegraded:
          session.next_seq = frame.header.seq + 1;
          SendReply(conn, FrameType::kAck, kAckFlagDegraded, frame.header.seq,
                    {});
          Inc(metrics_.acks_degraded);
          return;
        case FrameDecision::kNackOverload: {
          NackPayload nack{NackReason::kOverload, config_.retry_after_ms};
          SendReply(conn, FrameType::kNack, 0, frame.header.seq,
                    EncodeNackPayload(nack));
          Inc(metrics_.nacks_overload);
          return;
        }
        case FrameDecision::kNackFatal:
          Quarantine(conn, NackReason::kUnsupported, frame.header.seq);
          return;
      }
      return;
    }
    case FrameType::kTriageQuery: {
      Inc(metrics_.frames_triage);
      TriageQueryPayload query;
      if (!DecodeTriageQueryPayload(frame.payload, &query)) {
        ++malformed_frames_total_;
        Inc(metrics_.frames_malformed);
        Quarantine(conn, NackReason::kMalformed, frame.header.seq);
        return;
      }
      if (triage_handler_ == nullptr) {
        // This edge does not serve triage: fatal, not retryable.
        Quarantine(conn, NackReason::kUnsupported, frame.header.seq);
        return;
      }
      // Admission: the global watermark (same signal ingest honors) plus
      // the per-cycle sweep cap — a sweep walks every unit's store, so an
      // uncapped query storm would starve the telemetry data plane. Both
      // rejections reuse the retryable-NACK backoff machinery clients
      // already implement.
      const bool over_watermark =
          buffered_bytes_ > config_.global_buffer_high_watermark;
      if (over_watermark || triage_this_poll_ >= config_.max_triage_per_poll) {
        ++triage_rejected_total_;
        Inc(metrics_.triage_rejected);
        NackPayload nack{NackReason::kOverload, config_.retry_after_ms};
        SendReply(conn, FrameType::kNack, 0, frame.header.seq,
                  EncodeNackPayload(nack));
        Inc(metrics_.nacks_overload);
        return;
      }
      ++triage_this_poll_;
      TriageResultPayload result;
      if (!triage_handler_->OnTriageQuery(query, &result)) {
        // The application declined (its own overload policy): retryable.
        ++triage_rejected_total_;
        Inc(metrics_.triage_rejected);
        NackPayload nack{NackReason::kOverload, config_.retry_after_ms};
        SendReply(conn, FrameType::kNack, 0, frame.header.seq,
                  EncodeNackPayload(nack));
        Inc(metrics_.nacks_overload);
        return;
      }
      ++triage_served_total_;
      Inc(metrics_.triage_served);
      SendReply(conn, FrameType::kTriageResult, 0, frame.header.seq,
                EncodeTriageResultPayload(result));
      return;
    }
    case FrameType::kAck:
    case FrameType::kNack:
    case FrameType::kTriageResult:
      // Replies flow server->client only; a client sending them is broken.
      Quarantine(conn, NackReason::kUnsupported, frame.header.seq);
      return;
  }
}

void NetServer::SendReply(Conn& conn, FrameType type, uint8_t flags,
                          uint64_t seq, const std::vector<uint8_t>& payload) {
  if (conn.out.size() - conn.out_offset > config_.write_buffer_cap) {
    // The peer stopped draining replies; queuing more would grow without
    // bound. The reply is dropped — the client's timeout-and-retransmit
    // machinery recovers once (if) the connection drains or is reaped.
    return;
  }
  const std::vector<uint8_t> bytes = EncodeFrame(type, flags, /*priority=*/0,
                                                 seq, payload);
  conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  FlushWrites(conn);
}

void NetServer::Quarantine(Conn& conn, NackReason reason, uint64_t seq) {
  if (conn.quarantined) return;
  ++quarantined_total_;
  Inc(metrics_.reaped_malformed);
  Inc(reason == NackReason::kOverload ? metrics_.nacks_overload
                                      : metrics_.nacks_fatal);
  NackPayload nack{reason, 0};
  // Best-effort farewell so a well-meaning client learns why; the connection
  // closes as soon as the write drains (or immediately if it cannot).
  SendReply(conn, FrameType::kNack, 0, seq, EncodeNackPayload(nack));
  conn.quarantined = true;
}

void NetServer::FlushWrites(Conn& conn) {
  while (conn.out_offset < conn.out.size()) {
    const IoResult io = WriteSome(conn.socket, conn.out.data() + conn.out_offset,
                                  conn.out.size() - conn.out_offset);
    if (io.bytes > 0) {
      conn.out_offset += io.bytes;
      conn.last_activity = Now();
      Inc(metrics_.bytes_written, io.bytes);
      continue;
    }
    if (io.would_block) break;
    // Write error: the connection is dead; drop pending bytes so the reaper
    // collects it as quarantined-with-nothing-to-flush.
    conn.out.clear();
    conn.out_offset = 0;
    conn.quarantined = true;
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > (1u << 16)) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<ptrdiff_t>(conn.out_offset));
    conn.out_offset = 0;
  }
}

void NetServer::ReapDeadConnections() {
  const double now = Now();
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    const size_t pending = conn.out.size() - conn.out_offset;
    // Slow-drain bookkeeping: note when the write buffer first crossed the
    // cap, clear the mark once it drains back under.
    if (pending > config_.write_buffer_cap) {
      if (conn.slow_since < 0.0) conn.slow_since = now;
    } else {
      conn.slow_since = -1.0;
    }

    if (conn.quarantined && pending == 0) {
      it = CloseConn(it);
      continue;
    }
    if (conn.slow_since >= 0.0 &&
        now - conn.slow_since > config_.slow_drain_timeout_seconds) {
      ++reaped_slow_total_;
      Inc(metrics_.reaped_slow);
      it = CloseConn(it);
      continue;
    }
    if (now - conn.last_activity > config_.idle_timeout_seconds) {
      ++reaped_idle_total_;
      Inc(metrics_.reaped_idle);
      it = CloseConn(it);
      continue;
    }
    ++it;
  }
}

std::map<int, NetServer::Conn>::iterator NetServer::CloseConn(
    std::map<int, Conn>::iterator it) {
  const auto next = conns_.erase(it);
  connections_count_ = conns_.size();
  return next;
}

void NetServer::RecountBuffered() {
  size_t total = 0;
  for (const auto& [fd, conn] : conns_) {
    total += conn.decoder.buffered() + (conn.out.size() - conn.out_offset);
  }
  buffered_bytes_ = total;
}

std::vector<std::pair<uint64_t, uint64_t>> NetServer::ExportSessions() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(sessions_.size());
  for (const auto& [client_id, session] : sessions_) {
    out.emplace_back(client_id, session.next_seq);
  }
  return out;
}

void NetServer::RestoreSessions(
    const std::vector<std::pair<uint64_t, uint64_t>>& sessions) {
  sessions_.clear();
  for (const auto& [client_id, next_seq] : sessions) {
    sessions_[client_id].next_seq = next_seq;
  }
}

}  // namespace dbc
