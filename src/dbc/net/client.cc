#include "dbc/net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "dbc/common/stopwatch.h"

namespace dbc {

namespace {
constexpr size_t kReplyChunk = 4096;
constexpr size_t kGarbageBytes = 16;
}  // namespace

NetClient::NetClient(NetClientConfig config, NetFaultInjector* faults)
    : config_(config), faults_(faults) {}

NetClient::~NetClient() { Close(); }

Status NetClient::Connect() {
  Disconnect();
  Result<Socket> sock = TcpConnect(config_.port, config_.connect_timeout_ms);
  if (!sock.ok()) return sock.status();
  socket_ = std::move(sock.value());
  decoder_ = FrameDecoder(kWireDefaultMaxPayload);
  // Hello handshake (seq 0, never deduped): binds this connection to the
  // client_id whose session holds the retransmit-dedup cursor.
  HelloPayload hello{config_.client_id};
  const std::vector<uint8_t> frame = EncodeFrame(
      FrameType::kHello, 0, /*priority=*/0, /*seq=*/0,
      EncodeHelloPayload(hello));
  size_t off = 0;
  while (off < frame.size()) {
    const IoResult io = WriteSome(socket_, frame.data() + off,
                                  frame.size() - off);
    if (io.bytes == 0) {
      Disconnect();
      return Status::IoError("hello write failed");
    }
    off += io.bytes;
  }
  const std::optional<Frame> reply = AwaitReply(/*seq=*/0, ReplyPlane::kData);
  if (!reply.has_value() || reply->header.type != FrameType::kAck) {
    Disconnect();
    return Status::IoError("hello not acknowledged");
  }
  return Status::Ok();
}

void NetClient::Close() { Disconnect(); }

Result<SendOutcome> NetClient::Send(FrameType type, uint8_t priority,
                                    const std::vector<uint8_t>& payload) {
  if (type != FrameType::kTelemetryBatch && type != FrameType::kAlertBatch) {
    return Status::InvalidArgument("Send takes data frames only");
  }
  const uint64_t seq = next_seq_;
  const std::vector<uint8_t> frame =
      EncodeFrame(type, 0, priority, seq, payload);
  ++sends_total_;
  SendOutcome outcome;
  outcome.seq = seq;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_total_;
      ++outcome.retries;
    }
    if (!connected()) {
      if (!Connect().ok()) {
        Backoff(0);
        continue;
      }
      if (attempt > 0) ++reconnects_total_;
    }
    const FaultKind fault =
        faults_ != nullptr ? faults_->NextFault() : FaultKind::kNone;
    bool wrote = true;
    switch (fault) {
      case FaultKind::kNone:
      case FaultKind::kStall:
        wrote = WriteFrameBytes(frame);
        break;
      case FaultKind::kPartialWrite: {
        // Dribble the frame out byte-by-byte-ish; still a valid stream, so
        // this exercises the server's incremental decoder, not retransmit.
        size_t off = 0;
        while (wrote && off < frame.size()) {
          const size_t n =
              std::min(faults_->NextChunkSize(), frame.size() - off);
          wrote = WriteFrameBytes(
              std::vector<uint8_t>(frame.begin() + static_cast<ptrdiff_t>(off),
                                   frame.begin() +
                                       static_cast<ptrdiff_t>(off + n)));
          off += n;
        }
        break;
      }
      case FaultKind::kMidFrameDisconnect: {
        const size_t prefix = faults_->NextPrefixLength(frame.size());
        WriteFrameBytes(std::vector<uint8_t>(
            frame.begin(), frame.begin() + static_cast<ptrdiff_t>(prefix)));
        Disconnect();  // the server sees a truncated frame and moves on
        wrote = false;
        break;
      }
      case FaultKind::kGarbage: {
        // Leading garbage poisons the server-side decoder: the connection is
        // quarantined and the frame behind it is never applied. Recovery is
        // reconnect + resend of the same seq.
        std::vector<uint8_t> garbage(kGarbageBytes);
        faults_->NextGarbage(garbage.data(), garbage.size());
        WriteFrameBytes(garbage);
        wrote = false;
        Disconnect();
        break;
      }
    }
    if (!wrote) {
      Backoff(0);
      continue;
    }
    if (fault == FaultKind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(faults_->config().stall_ms));
    }
    const std::optional<Frame> reply = AwaitReply(seq, ReplyPlane::kData);
    if (!reply.has_value()) {
      // Lost reply (timeout, disconnect, or undecodable stream): the frame
      // may or may not have been applied — resend and let the session dedup.
      Disconnect();
      Backoff(0);
      continue;
    }
    if (reply->header.type == FrameType::kAck) {
      next_seq_ = seq + 1;
      backoff_ms_ = 0;
      if ((reply->header.flags & kAckFlagDegraded) != 0) {
        outcome.degraded = true;
        ++degraded_total_;
      }
      return outcome;
    }
    NackPayload nack;
    if (!DecodeNackPayload(reply->payload, &nack) ||
        nack.reason != NackReason::kOverload) {
      // Fatal NACK: this connection is done; a fresh one may fare better
      // (e.g. the server quarantined us for bytes a fault injector mangled).
      Disconnect();
      Backoff(0);
      continue;
    }
    ++nacks_overload_total_;
    Backoff(nack.retry_after_ms);
  }
  return Status::IoError("frame not acknowledged after max attempts");
}

Result<TriageResultPayload> NetClient::Query(const TriageQueryPayload& query) {
  // Queries draw from their own sequence space: the server's triage plane is
  // stateless and never advances the session's dedup cursor, so taking a seq
  // from next_seq_ would desynchronize the data plane — the Send after a
  // successful Query would present seq == next_seq + 1, which the server
  // quarantines as an impossible gap.
  const uint64_t seq = query_seq_;
  const std::vector<uint8_t> frame = EncodeFrame(
      FrameType::kTriageQuery, 0, 0, seq, EncodeTriageQueryPayload(query));
  ++sends_total_;
  // Same retry/backoff skeleton as Send, minus fault injection (queries are
  // an operator tool, not the plane the injector torments) and minus dedup
  // concerns: the query is read-only, so a retransmit the server answers
  // twice is harmless.
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_total_;
    if (!connected()) {
      if (!Connect().ok()) {
        Backoff(0);
        continue;
      }
      if (attempt > 0) ++reconnects_total_;
    }
    if (!WriteFrameBytes(frame)) {
      Backoff(0);
      continue;
    }
    const std::optional<Frame> reply = AwaitReply(seq, ReplyPlane::kTriage);
    if (!reply.has_value()) {
      Disconnect();
      Backoff(0);
      continue;
    }
    if (reply->header.type == FrameType::kTriageResult) {
      TriageResultPayload result;
      if (!DecodeTriageResultPayload(reply->payload, &result)) {
        Disconnect();  // the reply stream is lying about the format
        Backoff(0);
        continue;
      }
      query_seq_ = seq + 1;
      backoff_ms_ = 0;
      return result;
    }
    NackPayload nack;
    if (reply->header.type == FrameType::kNack &&
        DecodeNackPayload(reply->payload, &nack)) {
      if (nack.reason == NackReason::kOverload) {
        // Retryable overload (watermark or the server's per-cycle sweep
        // cap): honor the backoff hint like any other NACKed frame.
        ++nacks_overload_total_;
        Backoff(nack.retry_after_ms);
        continue;
      }
      // Fatal NACK: the server rejected the query itself (kUnsupported — no
      // triage backend behind this edge; kMalformed — the payload failed
      // decode). A retransmit resends the same bytes to the same verdict, so
      // fail fast instead of burning max_attempts on guaranteed rejections.
      Disconnect();
      return Status::IoError(nack.reason == NackReason::kUnsupported
                                 ? "triage query unsupported by this edge"
                                 : "triage query rejected as malformed");
    }
    // Undecodable or unexpected reply: treat it as lost and retry fresh.
    Disconnect();
    Backoff(0);
  }
  return Status::IoError("triage query not answered after max attempts");
}

bool NetClient::WriteFrameBytes(const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const IoResult io =
        WriteSome(socket_, bytes.data() + off, bytes.size() - off);
    if (io.error || (io.bytes == 0 && !io.would_block)) {
      Disconnect();
      return false;
    }
    off += io.bytes;
  }
  return true;
}

std::optional<Frame> NetClient::AwaitReply(uint64_t seq, ReplyPlane plane) {
  // Data and query sequence spaces are independent counters, so the same seq
  // value can be live on both planes at once; the expected reply type
  // disambiguates (kAck answers data frames, kTriageResult answers queries,
  // kNack is shared but only matched on the plane that is waiting).
  const FrameType want = plane == ReplyPlane::kData ? FrameType::kAck
                                                    : FrameType::kTriageResult;
  Stopwatch watch;
  uint8_t chunk[kReplyChunk];
  while (true) {
    // Drain anything already buffered first.
    while (true) {
      Frame frame;
      const WireVerdict verdict = decoder_.Next(&frame);
      if (verdict == WireVerdict::kFrame) {
        if (frame.header.type != want &&
            frame.header.type != FrameType::kNack) {
          continue;  // replies for the other plane, or not a reply at all
        }
        if (frame.header.seq == seq) return frame;
        continue;  // stale reply for an earlier attempt/frame
      }
      if (verdict == WireVerdict::kNeedMore) break;
      return std::nullopt;  // poisoned reply stream: reconnect
    }
    const double elapsed_ms = watch.ElapsedSeconds() * 1000.0;
    const int remaining =
        config_.reply_timeout_ms - static_cast<int>(elapsed_ms);
    if (remaining <= 0) return std::nullopt;
    if (!WaitReadable(socket_, remaining)) return std::nullopt;
    const IoResult io = ReadSome(socket_, chunk, sizeof(chunk));
    if (io.bytes > 0) {
      decoder_.Feed(chunk, io.bytes);
      continue;
    }
    if (io.would_block) continue;
    return std::nullopt;  // EOF or error
  }
}

void NetClient::Backoff(uint32_t hint_ms) {
  backoff_ms_ = backoff_ms_ == 0
                    ? config_.base_backoff_ms
                    : std::min(backoff_ms_ * 2, config_.max_backoff_ms);
  const uint32_t wait = std::max(backoff_ms_, hint_ms);
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
}

void NetClient::Disconnect() {
  socket_.Close();
  decoder_ = FrameDecoder(kWireDefaultMaxPayload);
}

}  // namespace dbc
