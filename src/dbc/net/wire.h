// Length-prefixed binary wire protocol for the serving edge (DESIGN.md §11):
// a versioned 24-byte frame header (magic, version, type, flags, priority,
// sequence number, payload length, payload CRC32) followed by a typed
// payload. Telemetry flows in as per-tick KPI batches, alerts flow out as
// framed JSON records, and every data frame is acknowledged (ACK) or
// rejected (NACK, retryable or fatal) so clients can retransmit without the
// server ever applying a batch twice.
//
// Hardening contract: FrameDecoder is an incremental, bounds-checked parser.
// It never reads past the bytes it was fed, never allocates more than the
// configured payload cap, and classifies every failure as a typed
// WireVerdict. Fatal verdicts (bad magic/version/type, oversized length, CRC
// mismatch) poison the decoder: framing is lost and the owning connection
// must be quarantined — the connection dies, the process never does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dbc/cloudsim/telemetry.h"
#include "dbc/common/binio.h"

namespace dbc {

/// First four bytes of every frame (little-endian on the wire).
inline constexpr uint32_t kWireMagic = 0xDBC0F4A3u;
/// Protocol version carried in every header.
inline constexpr uint8_t kWireVersion = 1;
/// Fixed header size in bytes.
inline constexpr size_t kWireHeaderSize = 24;
/// Default per-frame payload cap (decoder refuses larger length fields
/// before allocating anything).
inline constexpr size_t kWireDefaultMaxPayload = 1u << 20;

/// Payload structural limits, enforced by the codecs on both sides.
inline constexpr size_t kWireMaxUnitName = 256;
inline constexpr size_t kWireMaxBatchSamples = 4096;
inline constexpr size_t kWireMaxAlertRecords = 1024;
inline constexpr size_t kWireMaxAlertRecordBytes = 1u << 16;
inline constexpr size_t kWireMaxTriageEntries = 256;
/// Sanity ceiling on a query's requested top_k: larger values fail decode as
/// malformed. In-range values above kWireMaxTriageEntries are clamped down
/// to it at decode time, since a reply frame cannot carry more entries than
/// that — the serve path never computes a list the encoder would silently
/// truncate.
inline constexpr size_t kWireMaxTriageTopK = 1024;

// CRC32 over frame payloads is dbc::Crc32 (common/binio.h) — one IEEE 802.3
// implementation shared by the wire protocol and the durable-state layer.

/// Frame types. kHello opens a session (client_id payload) so sequence-based
/// retransmit deduplication survives reconnects; kTelemetryBatch / kAlertBatch
/// are the data planes; kAck / kNack close the loop per data frame.
/// kTriageQuery / kTriageResult are the fleet-triage request/reply pair
/// (stateless: no session, each query answered — or NACKed — individually).
enum class FrameType : uint8_t {
  kHello = 1,
  kTelemetryBatch = 2,
  kAlertBatch = 3,
  kAck = 4,
  kNack = 5,
  kTriageQuery = 6,
  kTriageResult = 7,
};

/// ACK flag: the frame was admitted but its batch was dropped by the
/// `degrade` overload policy (lowest-priority shedding). The client must NOT
/// retransmit — the drop is deliberate, counted, and surfaced in metrics.
inline constexpr uint8_t kAckFlagDegraded = 0x01;

/// Why a frame was NACKed. kOverload is retryable (back off and resend);
/// kMalformed and kUnsupported are fatal to the connection.
enum class NackReason : uint8_t {
  kOverload = 1,
  kMalformed = 2,
  kUnsupported = 3,
};

/// Decoded frame header (magic validated and stripped).
struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kHello;
  uint8_t flags = 0;
  /// Batch priority (higher = more important); the `degrade` overload policy
  /// sheds the lowest priorities first.
  uint8_t priority = 0;
  /// Per-session sequence number of data frames (1-based, contiguous);
  /// echoes the request's seq on ACK/NACK. 0 for kHello.
  uint64_t seq = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// One complete decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// Typed outcome of one FrameDecoder::Next() call.
enum class WireVerdict : uint8_t {
  kFrame = 0,         // *out holds a validated frame
  kNeedMore,          // no complete frame buffered yet
  kBadMagic,          // fatal: stream is not (or no longer) framed
  kBadVersion,        // fatal: peer speaks a different protocol revision
  kBadType,           // fatal: unknown frame type
  kOversized,         // fatal: length field exceeds the payload cap
  kBadCrc,            // fatal: payload corrupted in flight
  kMalformedPayload,  // payload codec rejected the bytes (frame-level, fatal)
  kPoisoned,          // a previous fatal verdict already killed the stream
};

/// Display name ("frame", "need-more", "bad-magic", ...).
const std::string& WireVerdictName(WireVerdict verdict);

/// True for verdicts that lose framing: the connection must be quarantined.
bool WireVerdictFatal(WireVerdict verdict);

/// Incremental frame parser over a bounded internal buffer. Feed() bytes as
/// they arrive; Next() yields frames until kNeedMore. Any fatal verdict
/// poisons the decoder permanently (framing cannot be recovered after
/// corruption — the transport must reconnect).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kWireDefaultMaxPayload);

  void Feed(const uint8_t* data, size_t size);
  void Feed(const std::vector<uint8_t>& data);

  /// Decodes the next buffered frame into *out (required non-null).
  WireVerdict Next(Frame* out);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered() const { return buffer_.size() - consumed_; }
  size_t frames_decoded() const { return frames_decoded_; }
  size_t max_payload() const { return max_payload_; }

 private:
  size_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
  size_t frames_decoded_ = 0;
};

/// Serializes a complete frame (header + CRC stamped) ready for the socket.
std::vector<uint8_t> EncodeFrame(FrameType type, uint8_t flags,
                                 uint8_t priority, uint64_t seq,
                                 const std::vector<uint8_t>& payload);

/// kHello payload: the stable client identity that keys retransmit
/// deduplication across reconnects.
struct HelloPayload {
  uint64_t client_id = 0;
};
std::vector<uint8_t> EncodeHelloPayload(const HelloPayload& hello);
bool DecodeHelloPayload(const std::vector<uint8_t>& bytes, HelloPayload* out);

/// kTelemetryBatch payload: one unit's collector samples for (usually) one
/// wall-clock step. Values round-trip bit-exactly, NaNs included — degraded
/// feeds are the point of the ingest layer, not a wire error.
struct TelemetryBatchPayload {
  std::string unit;
  std::vector<TelemetrySample> samples;
};
std::vector<uint8_t> EncodeTelemetryBatchPayload(
    const TelemetryBatchPayload& batch);
bool DecodeTelemetryBatchPayload(const std::vector<uint8_t>& bytes,
                                 TelemetryBatchPayload* out);

/// kAlertBatch payload: framed alert records (one JSON object per alert,
/// FormatAlertJson) — the egress data plane.
struct AlertBatchPayload {
  std::vector<std::string> records;
};
std::vector<uint8_t> EncodeAlertBatchPayload(const AlertBatchPayload& batch);
bool DecodeAlertBatchPayload(const std::vector<uint8_t>& bytes,
                             AlertBatchPayload* out);

/// kTriageQuery payload: one ranked root-cause request (triage/query.h)
/// addressed to the serving edge. Stateless — no Hello, no session sequence;
/// the reply (kTriageResult or a NACK) echoes the query's seq.
struct TriageQueryPayload {
  uint64_t window_begin = 0;
  uint64_t window_end = 0;
  uint32_t top_k = 10;
};
std::vector<uint8_t> EncodeTriageQueryPayload(const TriageQueryPayload& query);
bool DecodeTriageQueryPayload(const std::vector<uint8_t>& bytes,
                              TriageQueryPayload* out);

/// One ranked entry of a kTriageResult payload. Scores round-trip bit-exact
/// (f64 bit patterns), so a wire hop never perturbs the ranked order.
struct TriageEntryWire {
  std::string unit;
  uint32_t db = 0;
  uint32_t kpi = 0;
  double ks = 0.0;
  double volume = 0.0;
  double severity = 0.0;
};

/// kTriageResult payload: the severity-ranked root-cause list plus the sweep
/// accounting of the query it answers.
struct TriageResultPayload {
  std::vector<TriageEntryWire> entries;
  uint64_t series_swept = 0;
  uint64_t series_scored = 0;
  uint64_t series_skipped = 0;
  double fleet_abnormal_rate = 0.0;
};
std::vector<uint8_t> EncodeTriageResultPayload(
    const TriageResultPayload& result);
bool DecodeTriageResultPayload(const std::vector<uint8_t>& bytes,
                               TriageResultPayload* out);

/// kNack payload: reason + server backoff hint.
struct NackPayload {
  NackReason reason = NackReason::kOverload;
  uint32_t retry_after_ms = 0;
};
std::vector<uint8_t> EncodeNackPayload(const NackPayload& nack);
bool DecodeNackPayload(const std::vector<uint8_t>& bytes, NackPayload* out);

}  // namespace dbc
