// Reliable frame client: at-least-once delivery with deterministic
// exponential backoff, layered under the server's per-session dedup so the
// pair gives exactly-once application. One NetClient is one logical sender
// (one client_id); it is NOT thread-safe — callers serialize Send().
//
// The send loop for one frame:
//   1. ensure a connection exists (dial + Hello handshake on demand);
//   2. write the frame (optionally perturbed by a NetFaultInjector);
//   3. wait for the matching ACK/NACK with a deadline;
//   4. on a retryable NACK: back off (exponential, seeded by the server's
//      retry_after hint) and resend the SAME sequence number;
//   5. on timeout, disconnect, or a fatal NACK: reconnect and resend — if
//      the server already applied the frame it re-ACKs the retransmission
//      as a duplicate without applying it twice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dbc/common/status.h"
#include "dbc/net/fault.h"
#include "dbc/net/socket.h"
#include "dbc/net/wire.h"

namespace dbc {

struct NetClientConfig {
  uint16_t port = 0;
  /// Session identity; must be unique per logical sender and non-zero.
  uint64_t client_id = 1;
  int connect_timeout_ms = 2000;
  /// Deadline for the ACK/NACK of one attempt before it counts as lost.
  int reply_timeout_ms = 2000;
  /// Attempts per frame before Send gives up with kUnavailable.
  int max_attempts = 64;
  /// First retry delay; doubles per retryable failure up to the cap. A NACK
  /// carrying a retry_after hint uses max(hint, current backoff).
  uint32_t base_backoff_ms = 2;
  uint32_t max_backoff_ms = 256;
};

/// What a successful Send observed.
struct SendOutcome {
  uint64_t seq = 0;
  /// True when the server admitted the frame under its degrade policy (the
  /// batch was accepted at the edge but shed before the pipeline).
  bool degraded = false;
  /// Attempts beyond the first that this frame needed.
  size_t retries = 0;
};

class NetClient {
 public:
  explicit NetClient(NetClientConfig config,
                     NetFaultInjector* faults = nullptr);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Dials and performs the Hello handshake. Send() calls this lazily, so
  /// explicit use is only needed to fail fast.
  Status Connect();

  /// Reliably delivers one data frame (kTelemetryBatch or kAlertBatch).
  /// Blocks through retries/backoff; fails only after max_attempts.
  Result<SendOutcome> Send(FrameType type, uint8_t priority,
                           const std::vector<uint8_t>& payload);

  /// Sends one fleet-triage query and blocks for its kTriageResult,
  /// retrying with the usual backoff when the edge NACKs it as overloaded
  /// (watermark or per-cycle sweep cap). The query is read-only, so the
  /// at-least-once retransmit needs no dedup; queries number themselves from
  /// a sequence space separate from Send's, because the server's triage
  /// plane is stateless and never advances the session's dedup cursor. A
  /// fatal NACK (kUnsupported, kMalformed) fails fast without retrying.
  Result<TriageResultPayload> Query(const TriageQueryPayload& query);

  void Close();
  bool connected() const { return socket_.valid(); }

  size_t sends_total() const { return sends_total_; }
  size_t retries_total() const { return retries_total_; }
  size_t reconnects_total() const { return reconnects_total_; }
  size_t nacks_overload_total() const { return nacks_overload_total_; }
  size_t degraded_total() const { return degraded_total_; }

  const NetClientConfig& config() const { return config_; }

 private:
  /// Which request/reply plane a wait belongs to. Data frames are answered
  /// by kAck, triage queries by kTriageResult; the two planes number their
  /// frames independently, so seq alone cannot disambiguate a reply.
  enum class ReplyPlane { kData, kTriage };

  /// Writes raw bytes, applying at most one injected fault. Returns false
  /// when the connection must be considered dead.
  bool WriteFrameBytes(const std::vector<uint8_t>& bytes);
  /// Reads until a reply frame for `seq` on `plane` arrives or the deadline
  /// passes.
  std::optional<Frame> AwaitReply(uint64_t seq, ReplyPlane plane);
  void Backoff(uint32_t hint_ms);
  void Disconnect();

  NetClientConfig config_;
  NetFaultInjector* faults_;
  Socket socket_;
  FrameDecoder decoder_;
  /// Data-plane sequence counter: shared with the server's per-session dedup
  /// cursor, advanced only by acknowledged Sends.
  uint64_t next_seq_ = 1;
  /// Query-plane sequence counter: reply matching only — the triage plane is
  /// stateless server-side, so it must never touch next_seq_.
  uint64_t query_seq_ = 1;
  uint32_t backoff_ms_ = 0;

  size_t sends_total_ = 0;
  size_t retries_total_ = 0;
  size_t reconnects_total_ = 0;
  size_t nacks_overload_total_ = 0;
  size_t degraded_total_ = 0;
};

}  // namespace dbc
