// Async serving edge: a poll(2)-based acceptor multiplexing every client
// connection through one event loop, with explicit robustness machinery at
// each layer (DESIGN.md §11):
//
//  - bounded per-connection read/write buffers — a client can never grow
//    server memory past the watermarks;
//  - idle and slow-drain deadlines with connection reaping;
//  - malformed-frame hardening: any fatal FrameDecoder verdict quarantines
//    exactly that connection (best-effort fatal NACK, then close) — the
//    process never dies for a client's bytes;
//  - sequence-numbered data frames with per-client sessions, so a client
//    that retransmits after a lost ACK is re-ACKed without the frame being
//    applied twice (exactly-once application, at-least-once delivery);
//  - a global buffered-bytes watermark that NACKs new work with a retryable
//    overload signal before memory runs away (connection storms).
//
// The loop runs wherever the caller wants it: PollOnce() for deterministic
// single-thread tests, Run()/Stop() on a dedicated serve thread for benches
// and the e2e path. All mutating methods are serve-thread-only; Stop() and
// the stats accessors are safe from anywhere.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dbc/common/status.h"
#include "dbc/common/stopwatch.h"
#include "dbc/net/socket.h"
#include "dbc/net/wire.h"
#include "dbc/obs/metrics.h"

namespace dbc {

/// What the application layer decided about one data frame.
enum class FrameDecision : uint8_t {
  kAck,           // applied; advance the session sequence
  kAckDegraded,   // admitted but shed by the degrade policy; advances too
  kNackOverload,  // retryable: client should back off and resend
  kNackFatal,     // protocol abuse: NACK + quarantine the connection
};

/// Per-frame context handed to the handler.
struct FrameContext {
  uint64_t client_id = 0;
  uint64_t seq = 0;
  uint8_t priority = 0;
};

/// Application hook: the ingest edge and the alert collector both implement
/// this. Called from the serve thread only, once per non-duplicate data
/// frame; duplicates are re-ACKed by the server without a callback.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual FrameDecision OnFrame(const FrameContext& context,
                                const Frame& frame) = 0;
};

/// Application hook for fleet-triage queries (triage/query.h answers them
/// with TriageEngine::RootCauses). Called from the serve thread only, at
/// most `max_triage_per_poll` times per PollOnce cycle. Return false to
/// decline the query — the server NACKs it as retryable overload.
class TriageQueryHandler {
 public:
  virtual ~TriageQueryHandler() = default;
  virtual bool OnTriageQuery(const TriageQueryPayload& query,
                             TriageResultPayload* result) = 0;
};

/// Serving-edge policy knobs.
struct NetServerConfig {
  /// Loopback port to bind; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately (flood guard).
  size_t max_connections = 64;
  /// Per-frame payload cap handed to each connection's FrameDecoder.
  size_t max_payload = kWireDefaultMaxPayload;
  /// Per-connection pending-egress cap; beyond it the peer counts as slow.
  size_t write_buffer_cap = 1u << 20;
  /// Total buffered bytes (read + write, all connections) above which new
  /// data frames are NACKed with a retryable overload signal.
  size_t global_buffer_high_watermark = 8u << 20;
  /// Reap a connection with no bytes in or out for this long.
  double idle_timeout_seconds = 30.0;
  /// Reap a connection whose write buffer has stayed above the cap this long
  /// (a stalled reader that stopped draining its ACKs/alerts).
  double slow_drain_timeout_seconds = 5.0;
  /// Backoff hint stamped into retryable NACKs.
  uint32_t retry_after_ms = 20;
  /// Triage sweeps admitted per PollOnce cycle. A sweep walks every unit's
  /// store on the serve thread, so capping it keeps a triage storm from
  /// starving telemetry ingest; queries over the cap get a retryable
  /// overload NACK carrying retry_after_ms.
  size_t max_triage_per_poll = 1;
};

/// Serve-side observability (null = off), DESIGN.md §9/§11 naming.
struct NetServerMetrics {
  Counter* accepted = nullptr;            // connections accepted
  Counter* rejected_flood = nullptr;      // accept-and-close over the cap
  Counter* closed_peer = nullptr;         // orderly peer close / error
  Counter* reaped_idle = nullptr;
  Counter* reaped_slow = nullptr;
  Counter* reaped_malformed = nullptr;    // quarantined connections
  Counter* frames_hello = nullptr;
  Counter* frames_telemetry = nullptr;
  Counter* frames_alert = nullptr;
  Counter* frames_triage = nullptr;       // kTriageQuery frames seen
  Counter* frames_malformed = nullptr;    // fatal decode verdicts
  Counter* triage_served = nullptr;       // queries answered with a result
  Counter* triage_rejected = nullptr;     // dbc_triage_rejected_total
  Counter* acks = nullptr;
  Counter* acks_degraded = nullptr;
  Counter* nacks_overload = nullptr;
  Counter* nacks_fatal = nullptr;
  Counter* duplicates = nullptr;          // re-ACKed retransmissions
  Counter* bytes_read = nullptr;
  Counter* bytes_written = nullptr;
  Histogram* decode_seconds = nullptr;    // per-frame decode+dispatch time
  Gauge* connections = nullptr;
  Gauge* buffered_bytes = nullptr;
};

/// poll(2)-multiplexed frame server. Construction does not touch the
/// network; Listen() binds.
class NetServer {
 public:
  NetServer(NetServerConfig config, FrameHandler* handler);
  ~NetServer();

  /// Installs (or clears) the fleet-triage query hook. Without one, triage
  /// queries are quarantined as unsupported. Serve-thread only (or before
  /// the serve thread starts); the handler must outlive the server.
  void SetTriageHandler(TriageQueryHandler* handler) {
    triage_handler_ = handler;
  }

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the loopback listener. Fails with kIoError when the port is
  /// taken.
  Status Listen();

  /// The bound port (valid after Listen(); resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// One event-loop cycle: accept, read + decode + dispatch, flush writes,
  /// reap deadline violators. Returns the number of frames dispatched.
  /// Serve-thread only.
  size_t PollOnce(int timeout_ms);

  /// Loops PollOnce until Stop(); meant for a dedicated serve thread.
  void Run();

  /// Signals Run() to return after the current cycle. Any thread.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Live connection count. Any thread (atomic mirror of the conn map).
  size_t connections() const { return connections_count_; }
  /// Total decoder + write-buffer bytes currently held. Any thread.
  size_t buffered_bytes() const { return buffered_bytes_; }

  /// Lifetime stats (also mirrored to the metrics registry when enabled).
  size_t accepted_total() const { return accepted_total_; }
  size_t rejected_total() const { return rejected_total_; }
  size_t reaped_idle_total() const { return reaped_idle_total_; }
  size_t reaped_slow_total() const { return reaped_slow_total_; }
  size_t quarantined_total() const { return quarantined_total_; }
  size_t malformed_frames_total() const { return malformed_frames_total_; }
  size_t duplicates_total() const { return duplicates_total_; }
  size_t triage_served_total() const { return triage_served_total_; }
  size_t triage_rejected_total() const { return triage_rejected_total_; }

  const NetServerConfig& config() const { return config_; }

  /// Creates dbc_net_* metrics on `registry` (must outlive the server).
  void EnableObservability(MetricsRegistry* registry);

  /// Per-client retransmit-dedup floors: (client_id, next unapplied seq)
  /// pairs, in client-id order. Checkpointed so a restarted server re-ACKs —
  /// without re-applying — frames a client retransmits across the restart.
  /// Serve-thread only (or before the serve thread starts).
  std::vector<std::pair<uint64_t, uint64_t>> ExportSessions() const;

  /// Replaces the dedup table with checkpointed floors. Serve-thread only
  /// (recovery installs it before serving resumes).
  void RestoreSessions(
      const std::vector<std::pair<uint64_t, uint64_t>>& sessions);

 private:
  struct Conn {
    Socket socket;
    FrameDecoder decoder;
    std::vector<uint8_t> out;     // pending egress bytes
    size_t out_offset = 0;        // already-written prefix of `out`
    double last_activity = 0.0;   // seconds on clock_
    double slow_since = -1.0;     // when `out` first exceeded the cap
    uint64_t client_id = 0;       // 0 until a Hello arrives
    bool quarantined = false;     // stop reading; close once writes flush

    explicit Conn(Socket s, size_t max_payload, double now)
        : socket(std::move(s)), decoder(max_payload), last_activity(now) {}
  };

  /// Per-client (not per-connection) retransmit-dedup state.
  struct Session {
    uint64_t next_seq = 1;  // first unapplied data-frame sequence number
  };

  double Now() const { return clock_.ElapsedSeconds(); }

  void AcceptPending();
  /// Reads, decodes, and dispatches for one connection; returns frames
  /// dispatched.
  size_t ServiceReads(Conn& conn);
  void HandleFrame(Conn& conn, const Frame& frame);
  void SendReply(Conn& conn, FrameType type, uint8_t flags, uint64_t seq,
                 const std::vector<uint8_t>& payload);
  void Quarantine(Conn& conn, NackReason reason, uint64_t seq);
  void FlushWrites(Conn& conn);
  void ReapDeadConnections();
  std::map<int, Conn>::iterator CloseConn(std::map<int, Conn>::iterator it);
  void RecountBuffered();

  NetServerConfig config_;
  FrameHandler* handler_;
  TriageQueryHandler* triage_handler_ = nullptr;
  /// Sweeps admitted in the current PollOnce cycle (reset each cycle).
  size_t triage_this_poll_ = 0;
  Socket listener_;
  uint16_t port_ = 0;
  Stopwatch clock_;
  std::map<int, Conn> conns_;           // keyed by fd
  std::map<uint64_t, Session> sessions_;  // keyed by client_id
  std::atomic<bool> stop_{false};

  // Written by the serve thread only; atomic so the "any thread" stats
  // accessors (tests and scrapers poll them live) read clean values.
  std::atomic<size_t> buffered_bytes_{0};
  std::atomic<size_t> connections_count_{0};
  std::atomic<size_t> accepted_total_{0};
  std::atomic<size_t> rejected_total_{0};
  std::atomic<size_t> reaped_idle_total_{0};
  std::atomic<size_t> reaped_slow_total_{0};
  std::atomic<size_t> quarantined_total_{0};
  std::atomic<size_t> malformed_frames_total_{0};
  std::atomic<size_t> duplicates_total_{0};
  std::atomic<size_t> triage_served_total_{0};
  std::atomic<size_t> triage_rejected_total_{0};

  NetServerMetrics metrics_;
  bool observed_ = false;  // gates the decode-latency clock reads
};

}  // namespace dbc
