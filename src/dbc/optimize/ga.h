// Genetic-algorithm threshold learning (Algorithm 2).
#pragma once

#include "dbc/optimize/optimizer.h"

namespace dbc {

/// GA parameters (M individuals, N iterations of Algorithm 2).
struct GaConfig {
  size_t population = 12;
  size_t iterations = 8;
  /// Fraction of worst individuals evicted per iteration.
  double evict_fraction = 0.3;
  /// Mutation probability beta (§III-D).
  double mutation_probability = 0.25;
};

/// Algorithm 2: evaluate, keep the historical best, evict the poor, select
/// proportionally to fitness (Eq. 6), crossover, mutate.
class GeneticOptimizer final : public ThresholdOptimizer {
 public:
  explicit GeneticOptimizer(GaConfig config = {}) : config_(config) {}

  std::string Name() const override { return "GA"; }
  OptimizeResult Optimize(const ThresholdGenome& seed_genome,
                          const GenomeRanges& ranges, const FitnessFn& fitness,
                          Rng& rng) override;

 private:
  GaConfig config_;
};

}  // namespace dbc
