// Simulated-annealing comparator for Fig. 11.
#pragma once

#include "dbc/optimize/optimizer.h"

namespace dbc {

/// SA parameters, budgeted to roughly the same number of fitness evaluations
/// as the default GA so Fig. 11 compares strategies, not budgets.
struct SaConfig {
  size_t iterations = 96;
  double initial_temperature = 0.2;
  double cooling = 0.96;
};

/// Classic Metropolis annealing over the threshold genome.
class AnnealingOptimizer final : public ThresholdOptimizer {
 public:
  explicit AnnealingOptimizer(SaConfig config = {}) : config_(config) {}

  std::string Name() const override { return "SAA"; }
  OptimizeResult Optimize(const ThresholdGenome& seed_genome,
                          const GenomeRanges& ranges, const FitnessFn& fitness,
                          Rng& rng) override;

 private:
  SaConfig config_;
};

}  // namespace dbc
