#include "dbc/optimize/ga.h"

#include <algorithm>
#include <cassert>

namespace dbc {

OptimizeResult GeneticOptimizer::Optimize(const ThresholdGenome& seed_genome,
                                          const GenomeRanges& ranges,
                                          const FitnessFn& fitness, Rng& rng) {
  OptimizeResult result;
  const size_t pop_size = std::max<size_t>(4, config_.population);

  struct Individual {
    ThresholdGenome genome;
    double fitness = -1.0;
  };
  std::vector<Individual> population;
  population.push_back({seed_genome, -1.0});
  while (population.size() < pop_size) {
    population.push_back(
        {ThresholdGenome::Random(seed_genome.alpha.size(), ranges, rng), -1.0});
  }

  auto evaluate = [&](Individual& ind) {
    if (ind.fitness >= 0.0) return;
    ind.fitness = fitness(ind.genome);
    ++result.evaluations;
    if (ind.fitness > result.best_fitness || result.evaluations == 1) {
      result.best_fitness = ind.fitness;
      result.best = ind.genome;
    }
  };

  for (size_t iter = 0; iter < config_.iterations; ++iter) {
    // Get individuals' performance; save the historical best (Alg. 2 lines
    // 4-8).
    for (Individual& ind : population) evaluate(ind);

    // Evict poor performers (line 9).
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    const size_t keep = std::max<size_t>(
        2, pop_size - static_cast<size_t>(config_.evict_fraction *
                                          static_cast<double>(pop_size)));
    population.resize(keep);

    // Selection proportional to fitness (Eq. 6), then crossover + mutation
    // to refill the population (lines 10-12).
    std::vector<double> weights(population.size());
    for (size_t i = 0; i < population.size(); ++i) {
      weights[i] = std::max(1e-6, population[i].fitness);
    }
    std::vector<Individual> offspring;
    while (population.size() + offspring.size() < pop_size) {
      const size_t a = rng.WeightedChoice(weights);
      size_t b = rng.WeightedChoice(weights);
      if (b == a) b = (b + 1) % population.size();
      ThresholdGenome child_a, child_b;
      ThresholdGenome::Crossover(population[a].genome, population[b].genome,
                                 &child_a, &child_b, rng);
      if (rng.Bernoulli(config_.mutation_probability)) {
        child_a.Mutate(ranges, rng);
      }
      if (rng.Bernoulli(config_.mutation_probability)) {
        child_b.Mutate(ranges, rng);
      }
      offspring.push_back({std::move(child_a), -1.0});
      if (population.size() + offspring.size() < pop_size) {
        offspring.push_back({std::move(child_b), -1.0});
      }
    }
    for (Individual& ind : offspring) population.push_back(std::move(ind));
  }
  for (Individual& ind : population) evaluate(ind);
  return result;
}

}  // namespace dbc
