#include "dbc/optimize/random_search.h"

namespace dbc {

OptimizeResult RandomSearchOptimizer::Optimize(
    const ThresholdGenome& seed_genome, const GenomeRanges& ranges,
    const FitnessFn& fitness, Rng& rng) {
  OptimizeResult result;
  result.best = seed_genome;
  result.best_fitness = fitness(seed_genome);
  ++result.evaluations;
  for (size_t trial = 1; trial < config_.trials; ++trial) {
    const ThresholdGenome candidate =
        ThresholdGenome::Random(seed_genome.alpha.size(), ranges, rng);
    const double f = fitness(candidate);
    ++result.evaluations;
    if (f > result.best_fitness) {
      result.best_fitness = f;
      result.best = candidate;
    }
  }
  return result;
}

}  // namespace dbc
