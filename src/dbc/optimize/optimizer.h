// Common interface of the threshold-search strategies compared in Fig. 11:
// genetic algorithm (the paper's choice), simulated annealing, and random
// search.
#pragma once

#include <functional>
#include <string>

#include "dbc/optimize/genome.h"

namespace dbc {

/// Detection performance (F-Measure in [0, 1]) of a genome over the recent
/// judgment records.
using FitnessFn = std::function<double(const ThresholdGenome&)>;

/// Outcome of a threshold search.
struct OptimizeResult {
  ThresholdGenome best;
  double best_fitness = 0.0;
  size_t evaluations = 0;
};

/// A threshold-search strategy.
class ThresholdOptimizer {
 public:
  virtual ~ThresholdOptimizer() = default;
  virtual std::string Name() const = 0;

  /// Searches from `seed_genome` (the currently deployed thresholds).
  virtual OptimizeResult Optimize(const ThresholdGenome& seed_genome,
                                  const GenomeRanges& ranges,
                                  const FitnessFn& fitness, Rng& rng) = 0;
};

}  // namespace dbc
