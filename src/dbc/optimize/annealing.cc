#include "dbc/optimize/annealing.h"

#include <algorithm>
#include <cmath>

#include "dbc/common/mathutil.h"

namespace dbc {

OptimizeResult AnnealingOptimizer::Optimize(const ThresholdGenome& seed_genome,
                                            const GenomeRanges& ranges,
                                            const FitnessFn& fitness,
                                            Rng& rng) {
  OptimizeResult result;
  ThresholdGenome current = seed_genome;
  double current_fitness = fitness(current);
  ++result.evaluations;
  result.best = current;
  result.best_fitness = current_fitness;

  double temperature = config_.initial_temperature;
  for (size_t iter = 0; iter < config_.iterations; ++iter) {
    // Neighbour: perturb one random alpha, occasionally theta / tolerance.
    ThresholdGenome candidate = current;
    const size_t which = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidate.alpha.size()) + 1));
    if (which < candidate.alpha.size()) {
      candidate.alpha[which] =
          Clamp(candidate.alpha[which] +
                    rng.Normal(0.0, ranges.learning_rate * 0.7),
                ranges.alpha_min, ranges.alpha_max);
    } else if (which == candidate.alpha.size()) {
      candidate.theta =
          Clamp(candidate.theta + rng.Normal(0.0, 0.05), ranges.theta_lo,
                ranges.theta_hi);
    } else {
      candidate.tolerance = static_cast<int>(
          rng.UniformInt(ranges.tolerance_lo, ranges.tolerance_hi));
    }

    const double candidate_fitness = fitness(candidate);
    ++result.evaluations;
    if (candidate_fitness > result.best_fitness) {
      result.best_fitness = candidate_fitness;
      result.best = candidate;
    }
    const double delta = candidate_fitness - current_fitness;
    if (delta >= 0.0 ||
        rng.Bernoulli(std::exp(delta / std::max(1e-6, temperature)))) {
      current = candidate;
      current_fitness = candidate_fitness;
    }
    temperature *= config_.cooling;
  }
  return result;
}

}  // namespace dbc
