#include "dbc/optimize/genome.h"

#include <algorithm>
#include <sstream>

#include "dbc/common/mathutil.h"

namespace dbc {

ThresholdGenome ThresholdGenome::Random(size_t num_kpis,
                                        const GenomeRanges& ranges, Rng& rng) {
  ThresholdGenome g;
  g.alpha.resize(num_kpis);
  for (double& a : g.alpha) a = rng.Uniform(ranges.alpha_lo, ranges.alpha_hi);
  g.theta = rng.Uniform(ranges.theta_lo, ranges.theta_hi);
  g.tolerance = static_cast<int>(
      rng.UniformInt(ranges.tolerance_lo, ranges.tolerance_hi));
  return g;
}

void ThresholdGenome::Crossover(const ThresholdGenome& x,
                                const ThresholdGenome& y,
                                ThresholdGenome* child_a,
                                ThresholdGenome* child_b, Rng& rng) {
  const size_t n = std::min(x.alpha.size(), y.alpha.size());
  *child_a = x;
  *child_b = y;
  if (n >= 2) {
    // Split point m in (0, n): child_a = x[0..m) + y[m..n), mirrored for b.
    const size_t m = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(n) - 1));
    for (size_t i = m; i < n; ++i) {
      child_a->alpha[i] = y.alpha[i];
      child_b->alpha[i] = x.alpha[i];
    }
  }
  child_a->theta = rng.Bernoulli(0.5) ? x.theta : y.theta;
  child_b->theta = rng.Bernoulli(0.5) ? x.theta : y.theta;
  child_a->tolerance = rng.Bernoulli(0.5) ? x.tolerance : y.tolerance;
  child_b->tolerance = rng.Bernoulli(0.5) ? x.tolerance : y.tolerance;
}

void ThresholdGenome::Mutate(const GenomeRanges& ranges, Rng& rng) {
  for (double& a : alpha) {
    if (!rng.Bernoulli(0.5)) continue;
    const double delta =
        rng.Bernoulli(0.5) ? ranges.learning_rate : -ranges.learning_rate;
    a = Clamp(a + delta * rng.Uniform(0.3, 1.0), ranges.alpha_min,
              ranges.alpha_max);
  }
  theta = rng.Uniform(ranges.theta_lo, ranges.theta_hi);
  tolerance = static_cast<int>(
      rng.UniformInt(ranges.tolerance_lo, ranges.tolerance_hi));
}

std::string ThresholdGenome::ToString() const {
  std::ostringstream ss;
  ss << "alpha=[";
  for (size_t i = 0; i < alpha.size(); ++i) {
    if (i > 0) ss << ",";
    ss << alpha[i];
  }
  ss << "] theta=" << theta << " tolerance=" << tolerance;
  return ss.str();
}

}  // namespace dbc
