// Random-search comparator for Fig. 11.
#pragma once

#include "dbc/optimize/optimizer.h"

namespace dbc {

/// Budget matched to the default GA/SA.
struct RandomSearchConfig {
  size_t trials = 96;
};

/// Uniform random sampling over the genome ranges.
class RandomSearchOptimizer final : public ThresholdOptimizer {
 public:
  explicit RandomSearchOptimizer(RandomSearchConfig config = {})
      : config_(config) {}

  std::string Name() const override { return "Random"; }
  OptimizeResult Optimize(const ThresholdGenome& seed_genome,
                          const GenomeRanges& ranges, const FitnessFn& fitness,
                          Rng& rng) override;

 private:
  RandomSearchConfig config_;
};

}  // namespace dbc
