// Threshold genome — the individuals of the adaptive threshold learning
// policy (§III-D).
//
// "An individual's gene consists of three components: multiple correlation
// thresholds alpha_i, a tolerance threshold theta, and a maximum tolerance
// deviation number N." Window sizes are deployment configuration (set by the
// real-time requirement, §III-C), not learned.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dbc/common/rng.h"

namespace dbc {

/// Valid ranges for genome components (the initialization ranges of §III-D).
struct GenomeRanges {
  double alpha_lo = 0.6;
  double alpha_hi = 0.8;
  double theta_lo = 0.1;
  double theta_hi = 0.3;
  int tolerance_lo = 0;
  int tolerance_hi = 3;
  /// Mutation learning rate Delta (§III-D).
  double learning_rate = 0.1;
  /// Hard clamps applied after mutation (thresholds stay meaningful).
  double alpha_min = 0.2;
  double alpha_max = 0.98;
};

/// One individual: per-KPI correlation thresholds + tolerance threshold +
/// maximum tolerated level-2 deviations.
struct ThresholdGenome {
  std::vector<double> alpha;  // one correlation threshold per KPI
  double theta = 0.2;
  int tolerance = 2;

  /// Uniform random individual within the ranges.
  static ThresholdGenome Random(size_t num_kpis, const GenomeRanges& ranges,
                                Rng& rng);

  /// Paper crossover: a single split point m exchanges the alpha suffixes of
  /// the two parents; theta and tolerance of each child are picked randomly
  /// from the parents.
  static void Crossover(const ThresholdGenome& x, const ThresholdGenome& y,
                        ThresholdGenome* child_a, ThresholdGenome* child_b,
                        Rng& rng);

  /// Paper mutation: each alpha randomly moves by +/- learning_rate with the
  /// mutation handled per-gene; theta and tolerance are re-drawn within their
  /// ranges.
  void Mutate(const GenomeRanges& ranges, Rng& rng);

  std::string ToString() const;
};

}  // namespace dbc
