// CSV serialization of unit traces, so the library runs on real monitoring
// exports as well as on the simulator (the paper's data comes through the
// Tencent Cloud monitoring API [32]; a CSV dump is its lowest common
// denominator).
//
// Layout: one CSV per unit. Columns are, per database d (1-based),
// "D<d>.<kpi name>" for the 14 KPIs in enum order plus "D<d>.label" for the
// ground-truth point label (0/1, optional — absent columns mean unlabeled).
#pragma once

#include <string>

#include "dbc/common/status.h"
#include "dbc/datasets/dataset.h"

namespace dbc {

/// Writes one unit to a CSV file.
Status WriteUnitCsv(const std::string& path, const UnitData& unit);

/// Reads a unit from a CSV produced by WriteUnitCsv (or hand-assembled with
/// the same column naming). Role defaults: D1 primary, the rest replicas.
Result<UnitData> ReadUnitCsv(const std::string& path);

/// Writes every unit of a dataset into `directory` as <name>.csv. The
/// directory must exist.
Status WriteDatasetCsv(const std::string& directory, const Dataset& dataset);

}  // namespace dbc
