#include "dbc/datasets/io.h"

#include <algorithm>

#include "dbc/common/csv.h"

namespace dbc {

namespace {

std::string ColumnName(size_t db, const std::string& suffix) {
  return "D" + std::to_string(db + 1) + "." + suffix;
}

}  // namespace

Status WriteUnitCsv(const std::string& path, const UnitData& unit) {
  CsvTable table;
  const size_t dbs = unit.num_dbs();
  const size_t ticks = unit.length();
  for (size_t db = 0; db < dbs; ++db) {
    for (size_t k = 0; k < kNumKpis; ++k) {
      table.header.push_back(ColumnName(db, KpiName(static_cast<Kpi>(k))));
    }
    table.header.push_back(ColumnName(db, "label"));
  }
  table.rows.reserve(ticks);
  for (size_t t = 0; t < ticks; ++t) {
    std::vector<double> row;
    row.reserve(table.header.size());
    for (size_t db = 0; db < dbs; ++db) {
      for (size_t k = 0; k < kNumKpis; ++k) {
        row.push_back(unit.kpis[db].row(k)[t]);
      }
      row.push_back(db < unit.labels.size() && t < unit.labels[db].size()
                        ? static_cast<double>(unit.labels[db][t])
                        : 0.0);
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(path, table);
}

Result<UnitData> ReadUnitCsv(const std::string& path) {
  Result<CsvTable> read = ReadCsv(path);
  if (!read.ok()) return read.status();
  const CsvTable& table = read.value();

  // Discover databases by probing D<d>.<first KPI> columns.
  size_t dbs = 0;
  while (table.ColumnIndex(ColumnName(dbs, KpiName(static_cast<Kpi>(0)))) >=
         0) {
    ++dbs;
  }
  if (dbs == 0) {
    return Status::InvalidArgument("no D1.<kpi> columns in " + path);
  }

  UnitData unit;
  unit.name = path;
  const size_t ticks = table.num_rows();
  for (size_t db = 0; db < dbs; ++db) {
    MultiSeries ms;
    for (size_t k = 0; k < kNumKpis; ++k) {
      const std::string name = KpiName(static_cast<Kpi>(k));
      const int col = table.ColumnIndex(ColumnName(db, name));
      if (col < 0) {
        return Status::InvalidArgument("missing column " +
                                       ColumnName(db, name) + " in " + path);
      }
      ms.Add(name, Series(table.Column(static_cast<size_t>(col))));
    }
    unit.kpis.push_back(std::move(ms));
    unit.roles.push_back(db == 0 ? DbRole::kPrimary : DbRole::kReplica);

    std::vector<uint8_t> labels(ticks, 0);
    const int label_col = table.ColumnIndex(ColumnName(db, "label"));
    if (label_col >= 0) {
      const std::vector<double> raw =
          table.Column(static_cast<size_t>(label_col));
      for (size_t t = 0; t < ticks; ++t) labels[t] = raw[t] != 0.0 ? 1 : 0;
    }
    unit.labels.push_back(std::move(labels));
  }
  return unit;
}

Status WriteDatasetCsv(const std::string& directory, const Dataset& dataset) {
  for (const UnitData& unit : dataset.units) {
    std::string name = unit.name.empty() ? "unit" : unit.name;
    std::replace(name.begin(), name.end(), '/', '_');
    const Status status = WriteUnitCsv(directory + "/" + name + ".csv", unit);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace dbc
