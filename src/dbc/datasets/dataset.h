// Dataset assembly: collections of simulated units standing in for the
// paper's Tencent / Sysbench / TPCC datasets (§IV-A-1).
#pragma once

#include <string>
#include <vector>

#include "dbc/cloudsim/unit_data.h"

namespace dbc {

/// A named collection of simulated units.
struct Dataset {
  std::string name;
  std::vector<UnitData> units;

  size_t num_units() const { return units.size(); }

  /// Total (db, t) measurement points across all units and KPIs is
  /// units * dbs * ticks * kNumKpis; this returns units * dbs * ticks (the
  /// label-able points, matching Table III accounting).
  size_t TotalPoints() const;

  /// Labeled abnormal points.
  size_t AbnormalPoints() const;

  /// Fraction of abnormal points.
  double AbnormalRatio() const;

  /// Units whose profile is periodic (the "II" variants of §IV-A-2).
  Dataset PeriodicSubset() const;
  /// Units whose profile is irregular (the "I" variants).
  Dataset IrregularSubset() const;

  /// Splits every unit at `fraction` of its length: first part returned in
  /// `train`, remainder in `test` (the 50/50 protocol of §IV-B).
  void Split(double fraction, Dataset* train, Dataset* test) const;
};

/// Sizing for a dataset build. Defaults are laptop-scale; the paper-scale
/// values are in comments.
struct DatasetScale {
  size_t units = 8;          // paper: 100 (Tencent) / 50 (Sysbench, TPCC)
  size_t ticks = 1600;       // points per database series
  size_t num_databases = 5;  // one primary + four replicas
  uint64_t seed = 20230407;
};

/// Per-tick median of a KPI across all databases of a unit — a robust
/// unit-level signal: single-database anomalies (the only kind, §II-C)
/// cannot move the median of five databases. Used to classify a unit's
/// workload as periodic or irregular (§IV-A-2).
Series UnitMedianKpi(const UnitData& unit, Kpi kpi);

/// Tencent-style mixed dataset: 60% irregular units, 40% periodic units
/// (§IV-A-2), all anomaly kinds, 3.11% target abnormal ratio.
Dataset BuildTencentDataset(const DatasetScale& scale);

/// Sysbench-style dataset from the Table IV parameter space (4.21% ratio).
Dataset BuildSysbenchDataset(const DatasetScale& scale);

/// TPCC-style dataset from the Table IV parameter space (4.06% ratio).
Dataset BuildTpccDataset(const DatasetScale& scale);

}  // namespace dbc
