#include "dbc/datasets/dataset.h"

#include <cmath>

#include "dbc/cloudsim/unit_sim.h"
#include "dbc/common/mathutil.h"

namespace dbc {

size_t Dataset::TotalPoints() const {
  size_t total = 0;
  for (const UnitData& u : units) total += u.num_dbs() * u.length();
  return total;
}

size_t Dataset::AbnormalPoints() const {
  size_t total = 0;
  for (const UnitData& u : units) total += u.AbnormalPoints();
  return total;
}

double Dataset::AbnormalRatio() const {
  const size_t total = TotalPoints();
  if (total == 0) return 0.0;
  return static_cast<double>(AbnormalPoints()) / static_cast<double>(total);
}

Dataset Dataset::PeriodicSubset() const {
  Dataset out;
  out.name = name + " II";
  for (const UnitData& u : units) {
    if (u.periodic) out.units.push_back(u);
  }
  return out;
}

Dataset Dataset::IrregularSubset() const {
  Dataset out;
  out.name = name + " I";
  for (const UnitData& u : units) {
    if (!u.periodic) out.units.push_back(u);
  }
  return out;
}

void Dataset::Split(double fraction, Dataset* train, Dataset* test) const {
  train->name = name + " (train)";
  test->name = name + " (test)";
  train->units.clear();
  test->units.clear();
  for (const UnitData& u : units) {
    const size_t cut =
        static_cast<size_t>(fraction * static_cast<double>(u.length()));
    train->units.push_back(u.Slice(0, cut));
    test->units.push_back(u.Slice(cut, u.length()));
  }
}

Series UnitMedianKpi(const UnitData& unit, Kpi kpi) {
  const size_t ticks = unit.length();
  std::vector<double> out(ticks);
  std::vector<double> column(unit.num_dbs());
  for (size_t t = 0; t < ticks; ++t) {
    for (size_t db = 0; db < unit.num_dbs(); ++db) {
      column[db] = unit.kpi(db, kpi)[t];
    }
    out[t] = Median(column);
  }
  return Series(std::move(out));
}

namespace {

/// Shared build loop: `periodic_fraction` of units get periodic-family
/// profiles, the rest irregular-family; `family` picks the profile source.
enum class Family { kTencent, kSysbench, kTpcc };

Dataset Build(Family family, const std::string& name, double target_ratio,
              double periodic_fraction, const DatasetScale& scale) {
  Dataset ds;
  ds.name = name;
  Rng root(scale.seed ^ (static_cast<uint64_t>(family) << 32));

  UnitSimConfig config;
  config.num_databases = scale.num_databases;
  config.ticks = scale.ticks;
  config.anomalies.target_ratio = target_ratio;

  const size_t periodic_units = static_cast<size_t>(
      std::round(periodic_fraction * static_cast<double>(scale.units)));

  for (size_t i = 0; i < scale.units; ++i) {
    Rng unit_rng = root.Fork(i + 1);
    const bool periodic = i < periodic_units;
    std::unique_ptr<WorkloadProfile> profile;
    switch (family) {
      case Family::kTencent: {
        if (periodic) {
          PeriodicProfileParams p;
          p.base_rate = unit_rng.Uniform(800.0, 4000.0);
          p.amplitude = p.base_rate * unit_rng.Uniform(0.4, 1.2);
          // Keep several cycles inside the trace so the periodicity is a
          // property of the data, not an artifact cut off by the horizon.
          const size_t max_period = std::max<size_t>(160, scale.ticks / 4);
          p.period = static_cast<size_t>(unit_rng.UniformInt(
              160, static_cast<int64_t>(max_period)));
          profile = MakePeriodicProfile(p, unit_rng.Fork(11));
        } else {
          IrregularProfileParams p;
          p.base_rate = unit_rng.Uniform(800.0, 4000.0);
          profile = MakeIrregularProfile(p, unit_rng.Fork(11));
        }
        break;
      }
      case Family::kSysbench: {
        SysbenchParams p = SampleSysbenchParams(periodic, unit_rng);
        profile = MakeSysbenchProfile(p, unit_rng.Fork(11));
        break;
      }
      case Family::kTpcc: {
        TpccParams p = SampleTpccParams(periodic, unit_rng);
        profile = MakeTpccProfile(p, unit_rng.Fork(11));
        break;
      }
    }
    UnitData unit =
        SimulateUnit(config, *profile, periodic, unit_rng.Fork(12));
    unit.name = name + "-unit-" + std::to_string(i);
    ds.units.push_back(std::move(unit));
  }
  return ds;
}

}  // namespace

Dataset BuildTencentDataset(const DatasetScale& scale) {
  // Table III: 3.11% abnormal; §IV-A-2: 40% periodic / 60% irregular.
  return Build(Family::kTencent, "Tencent", 0.0311, 0.4, scale);
}

Dataset BuildSysbenchDataset(const DatasetScale& scale) {
  return Build(Family::kSysbench, "Sysbench", 0.0421, 0.4, scale);
}

Dataset BuildTpccDataset(const DatasetScale& scale) {
  return Build(Family::kTpcc, "TPCC", 0.0406, 0.4, scale);
}

}  // namespace dbc
