#include "dbc/ts/lag.h"

#include <cassert>
#include <cstdlib>

namespace dbc {

Series ShiftEdgeFill(const Series& s, int lag) {
  const size_t n = s.size();
  if (n == 0 || lag == 0) return s;
  std::vector<double> out(n);
  if (lag > 0) {
    const size_t k = std::min<size_t>(static_cast<size_t>(lag), n);
    for (size_t i = 0; i < k; ++i) out[i] = s[0];
    for (size_t i = k; i < n; ++i) out[i] = s[i - k];
  } else {
    const size_t k = std::min<size_t>(static_cast<size_t>(-lag), n);
    for (size_t i = 0; i + k < n; ++i) out[i] = s[i + k];
    for (size_t i = n - k; i < n; ++i) out[i] = s[n - 1];
  }
  return Series(std::move(out));
}

AlignedPair AlignWithLag(const Series& x, const Series& y, int lag) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  const size_t s = std::min<size_t>(static_cast<size_t>(std::abs(lag)), n);
  AlignedPair out;
  out.x.reserve(n - s);
  out.y.reserve(n - s);
  if (lag >= 0) {
    for (size_t i = 0; i + s < n; ++i) {
      out.x.push_back(x[i + s]);
      out.y.push_back(y[i]);
    }
  } else {
    for (size_t i = 0; i + s < n; ++i) {
      out.x.push_back(x[i]);
      out.y.push_back(y[i + s]);
    }
  }
  return out;
}

}  // namespace dbc
