#include "dbc/ts/normalize.h"

#include <cmath>

#include "dbc/common/mathutil.h"

namespace dbc {

void MinMaxNormalizeInPlace(std::vector<double>& v) {
  if (v.empty()) return;
  const double lo = Min(v);
  const double hi = Max(v);
  const double range = hi - lo;
  if (range <= 0.0) {
    for (double& x : v) x = 0.0;
    return;
  }
  for (double& x : v) x = (x - lo) / range;
}

Series MinMaxNormalize(const Series& s) {
  std::vector<double> v = s.values();
  MinMaxNormalizeInPlace(v);
  return Series(std::move(v));
}

Series ZScoreNormalize(const Series& s) {
  const double mean = s.Mean();
  const double sd = s.Stddev();
  std::vector<double> v = s.values();
  if (sd <= 0.0) {
    for (double& x : v) x = 0.0;
  } else {
    for (double& x : v) x = (x - mean) / sd;
  }
  return Series(std::move(v));
}

Series RobustNormalize(const Series& s) {
  std::vector<double> v = s.values();
  const double med = Median(v);
  const double iqr = Quantile(v, 0.75) - Quantile(v, 0.25);
  const double denom = iqr > 0.0 ? iqr : 1.0;
  for (double& x : v) x = (x - med) / denom;
  return Series(std::move(v));
}

}  // namespace dbc
