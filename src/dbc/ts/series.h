// Core time-series containers.
//
// A Series is a uniformly sampled sequence of KPI values (the paper collects
// one point per 5 seconds). A MultiSeries bundles several Series of equal
// length, e.g. all 14 KPIs of one database, or the same KPI across the
// databases of a unit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dbc {

/// Uniformly sampled univariate time series.
class Series {
 public:
  Series() = default;
  explicit Series(std::vector<double> values) : values_(std::move(values)) {}
  Series(std::initializer_list<double> values) : values_(values) {}
  Series(size_t n, double fill) : values_(n, fill) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  void PushBack(double v) { values_.push_back(v); }
  void Reserve(size_t n) { values_.reserve(n); }

  /// Copies the half-open range [begin, end). Clamps to bounds.
  Series Slice(size_t begin, size_t end) const;

  /// Last `n` points (or the whole series when shorter).
  Series Tail(size_t n) const;

  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;
  double L2Norm() const;

  /// First-order difference: out[i] = x[i+1] - x[i] (size n-1).
  Series Diff() const;

  /// Element-wise sum; requires equal sizes.
  Series operator+(const Series& other) const;
  /// Scales every point by `factor`.
  Series operator*(double factor) const;

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

 private:
  std::vector<double> values_;
};

/// A named bundle of equally long series (the rows of a KPI matrix).
class MultiSeries {
 public:
  MultiSeries() = default;

  /// Appends a row. All rows must have equal length (checked in debug).
  void Add(std::string name, Series series);

  size_t num_series() const { return rows_.size(); }
  /// Length of each row (0 when empty).
  size_t length() const { return rows_.empty() ? 0 : rows_.front().size(); }

  const Series& row(size_t i) const { return rows_[i]; }
  Series& row(size_t i) { return rows_[i]; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Index of the row named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Column vector at time t: one value per row.
  std::vector<double> Column(size_t t) const;

  /// Slices every row to [begin, end).
  MultiSeries Slice(size_t begin, size_t end) const;

 private:
  std::vector<std::string> names_;
  std::vector<Series> rows_;
};

}  // namespace dbc
