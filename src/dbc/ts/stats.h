// Rolling statistics over series (used by simulators and baselines).
#pragma once

#include "dbc/ts/series.h"

namespace dbc {

/// Centered-at-the-right rolling mean with window w (out[i] averages
/// x[max(0,i-w+1) .. i]).
Series RollingMean(const Series& s, size_t w);

/// Rolling standard deviation with the same alignment as RollingMean.
Series RollingStddev(const Series& s, size_t w);

/// Exponential moving average with smoothing factor alpha in (0, 1].
Series Ema(const Series& s, double alpha);

/// Online mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Downsamples by averaging consecutive groups of `factor` points; a partial
/// trailing group is averaged over its actual length.
Series DownsampleMean(const Series& s, size_t factor);

}  // namespace dbc
