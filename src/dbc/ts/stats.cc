#include "dbc/ts/stats.h"

#include <cassert>
#include <cmath>

namespace dbc {

Series RollingMean(const Series& s, size_t w) {
  assert(w > 0);
  std::vector<double> out(s.size());
  double acc = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    acc += s[i];
    if (i >= w) acc -= s[i - w];
    const size_t len = std::min(i + 1, w);
    out[i] = acc / static_cast<double>(len);
  }
  return Series(std::move(out));
}

Series RollingStddev(const Series& s, size_t w) {
  assert(w > 0);
  std::vector<double> out(s.size());
  double sum = 0.0, sumsq = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    sum += s[i];
    sumsq += s[i] * s[i];
    if (i >= w) {
      sum -= s[i - w];
      sumsq -= s[i - w] * s[i - w];
    }
    const double len = static_cast<double>(std::min(i + 1, w));
    const double mean = sum / len;
    const double var = std::max(0.0, sumsq / len - mean * mean);
    out[i] = std::sqrt(var);
  }
  return Series(std::move(out));
}

Series Ema(const Series& s, double alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out(s.size());
  double prev = s.empty() ? 0.0 : s[0];
  for (size_t i = 0; i < s.size(); ++i) {
    prev = alpha * s[i] + (1.0 - alpha) * prev;
    out[i] = prev;
  }
  return Series(std::move(out));
}

void OnlineStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Series DownsampleMean(const Series& s, size_t factor) {
  assert(factor > 0);
  std::vector<double> out;
  out.reserve((s.size() + factor - 1) / factor);
  for (size_t i = 0; i < s.size(); i += factor) {
    double acc = 0.0;
    size_t len = 0;
    for (size_t j = i; j < std::min(i + factor, s.size()); ++j) {
      acc += s[j];
      ++len;
    }
    out.push_back(acc / static_cast<double>(len));
  }
  return Series(std::move(out));
}

}  // namespace dbc
