#include "dbc/ts/window.h"

namespace dbc {

std::vector<double> RingWindow::Last(size_t n) const {
  assert(n <= size_);
  std::vector<double> out(n);
  const size_t start = size_ - n;
  for (size_t i = 0; i < n; ++i) out[i] = At(start + i);
  return out;
}

}  // namespace dbc
