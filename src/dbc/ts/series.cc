#include "dbc/ts/series.h"

#include <algorithm>
#include <cassert>

#include "dbc/common/mathutil.h"

namespace dbc {

Series Series::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return Series();
  return Series(std::vector<double>(values_.begin() + static_cast<ptrdiff_t>(begin),
                                    values_.begin() + static_cast<ptrdiff_t>(end)));
}

Series Series::Tail(size_t n) const {
  if (n >= size()) return *this;
  return Slice(size() - n, size());
}

double Series::Mean() const { return dbc::Mean(values_); }
double Series::Stddev() const { return dbc::Stddev(values_); }
double Series::Min() const { return dbc::Min(values_); }
double Series::Max() const { return dbc::Max(values_); }
double Series::L2Norm() const { return dbc::L2Norm(values_); }

Series Series::Diff() const {
  if (values_.size() < 2) return Series();
  std::vector<double> out(values_.size() - 1);
  for (size_t i = 0; i + 1 < values_.size(); ++i) {
    out[i] = values_[i + 1] - values_[i];
  }
  return Series(std::move(out));
}

Series Series::operator+(const Series& other) const {
  assert(size() == other.size());
  std::vector<double> out(values_);
  for (size_t i = 0; i < out.size(); ++i) out[i] += other.values_[i];
  return Series(std::move(out));
}

Series Series::operator*(double factor) const {
  std::vector<double> out(values_);
  for (double& v : out) v *= factor;
  return Series(std::move(out));
}

void MultiSeries::Add(std::string name, Series series) {
  assert(rows_.empty() || series.size() == rows_.front().size());
  names_.push_back(std::move(name));
  rows_.push_back(std::move(series));
}

int MultiSeries::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> MultiSeries::Column(size_t t) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[t]);
  return out;
}

MultiSeries MultiSeries::Slice(size_t begin, size_t end) const {
  MultiSeries out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    out.Add(names_[i], rows_[i].Slice(begin, end));
  }
  return out;
}

}  // namespace dbc
