// Lag/shift utilities for modelling point-in-time collection delays (§II-D).
#pragma once

#include "dbc/ts/series.h"

namespace dbc {

/// Shifts the series right by `lag` points (lag may be negative for a left
/// shift). Vacated positions are filled by replicating the edge value, which
/// mimics a collector that repeats its last reading while delayed.
Series ShiftEdgeFill(const Series& s, int lag);

/// Overlapping parts of x and y when y lags x by `lag` points (paper Eq. 2):
/// returns {x[lag..n), y[0..n-lag)} for lag >= 0 and the mirror for lag < 0.
struct AlignedPair {
  std::vector<double> x;
  std::vector<double> y;
};
AlignedPair AlignWithLag(const Series& x, const Series& y, int lag);

}  // namespace dbc
