// Bounded ring buffer used by the streaming data-processing module.
//
// The data processing module of DBCatcher maintains one queue per (KPI,
// database); the correlation module reads the most recent W points out of it
// without copying the whole history.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace dbc {

/// Fixed-capacity ring buffer of doubles. Pushing past capacity overwrites
/// the oldest value.
class RingWindow {
 public:
  explicit RingWindow(size_t capacity) : buf_(capacity), capacity_(capacity) {
    assert(capacity > 0);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }
  bool empty() const { return size_ == 0; }

  /// Appends a value, evicting the oldest when full.
  void Push(double v) {
    buf_[head_] = v;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) ++size_;
  }

  /// i-th value from the oldest (0 = oldest). Requires i < size().
  double At(size_t i) const {
    assert(i < size_);
    const size_t oldest = (head_ + capacity_ - size_) % capacity_;
    return buf_[(oldest + i) % capacity_];
  }

  /// Most recent value. Requires non-empty.
  double Back() const {
    assert(size_ > 0);
    return buf_[(head_ + capacity_ - 1) % capacity_];
  }

  /// Copies the last `n` values in chronological order (n <= size()).
  std::vector<double> Last(size_t n) const;

  /// Copies everything in chronological order.
  std::vector<double> ToVector() const { return Last(size_); }

  void Clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<double> buf_;
  size_t capacity_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace dbc
