// Normalization transforms.
//
// DBCatcher compares *trends*, not magnitudes, so every window is min-max
// normalized before correlation (paper Eq. 1).
#pragma once

#include "dbc/ts/series.h"

namespace dbc {

/// Min-max normalization to [0, 1] (Eq. 1). A constant series maps to all
/// zeros (its trend carries no information).
Series MinMaxNormalize(const Series& s);

/// Z-score normalization; a constant series maps to all zeros.
Series ZScoreNormalize(const Series& s);

/// Robust normalization: (x - median) / IQR, IQR-safe for constants.
Series RobustNormalize(const Series& s);

/// In-place min-max normalization of a raw vector (Eq. 1).
void MinMaxNormalizeInPlace(std::vector<double>& v);

}  // namespace dbc
