// Self-observability primitives for the detection engine: monotonic
// counters, gauges, and fixed-bucket latency histograms behind a named
// registry.
//
// Design constraints (DESIGN.md §9): the hot path is the sharded drain, so
// every mutation is a single relaxed atomic op — no locks, no allocation.
// The registry's mutex guards only metric *creation* (RegisterUnit time) and
// snapshotting (scrape time); instrumented layers hold raw metric pointers,
// which stay valid for the registry's lifetime. A null pointer means
// "observability off": the `Inc`/`Set`/`Observe` helpers turn into a single
// branch, so disabled observability leaves the detection output bit-identical
// and the cost unmeasurable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dbc {

/// Monotonic event counter (Prometheus counter semantics).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge; Add() accumulates (e.g. busy-seconds per worker).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // fetch_add on atomic<double> is C++20; relaxed is enough — gauges are
    // statistics, never synchronization.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit +Inf bucket catches the rest. Observe() is two relaxed
/// atomic adds plus a branchless-ish bucket search over a handful of bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate in [0, 1] by linear interpolation inside the covering
  /// bucket (the Prometheus histogram_quantile rule). Returns 0 when empty;
  /// quantiles landing in the +Inf bucket clamp to the largest finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last = +Inf bucket).
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default pipeline-stage latency buckets (seconds): 1us .. ~8s, doubling.
const std::vector<double>& DefaultLatencyBounds();

/// Label set attached to a metric instance, e.g. {{"unit", "unit-3"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Null-tolerant instrumentation helpers: the detection layers call these
/// with possibly-null metric pointers, so "observability off" costs exactly
/// one predictable branch per site.
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

/// Observability knobs, threaded from DetectionEngineConfig down to every
/// layer. Off (the default) is the bit-identical zero-overhead mode.
struct ObsConfig {
  /// Master switch: when false no registry or trace log exists and every
  /// instrumentation pointer stays null.
  bool enabled = false;
  /// Also record structured per-tick TraceEvents (see trace.h).
  bool trace = true;
  /// TraceLog ring capacity (events); oldest events are overwritten.
  size_t trace_capacity = 4096;
};

/// Named metric store. Get*() returns a stable pointer, creating the metric
/// on first use (same name + labels → same instance; a name must keep one
/// kind). Exposition iterates entries in lexicographic key order, so scrapes
/// are deterministic.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {},
                          const std::vector<double>& bounds =
                              DefaultLatencyBounds());

  /// One registered metric instance, as seen by a scrape.
  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind = Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Snapshot of every registered metric, ordered by (name, labels).
  std::vector<Entry> Entries() const;

  /// Number of registered metric instances.
  size_t size() const;

  /// Looks up an existing instance without creating it (nullptr if absent).
  /// Handy for tests asserting a counter the scenario should have touched.
  const Counter* FindCounter(const std::string& name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const MetricLabels& labels = {}) const;

 private:
  struct Slot {
    std::string name;
    MetricLabels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::string Key(const std::string& name, const MetricLabels& labels);
  const Slot* Find(const std::string& name, const MetricLabels& labels,
                   Kind kind) const;

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace dbc
