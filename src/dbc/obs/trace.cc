#include "dbc/obs/trace.h"

#include <algorithm>
#include <utility>

namespace dbc {

TraceLog::TraceLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

void TraceLog::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
  ++recorded_;
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t TraceLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace dbc
