#include "dbc/obs/exposition.h"

#include <cinttypes>
#include <cstdio>

namespace dbc {

namespace {

std::string LabelBlock(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

/// Label block with an extra `le` label appended (histogram buckets).
std::string LabelBlockLe(const MetricLabels& labels, const std::string& le) {
  MetricLabels with = labels;
  with.emplace_back("le", le);
  return LabelBlock(with);
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::string last_typed;  // emit one # TYPE header per metric family
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    const std::string labels = LabelBlock(entry.labels);
    switch (entry.kind) {
      case MetricsRegistry::Kind::kCounter:
        if (entry.name != last_typed) {
          out += "# TYPE " + entry.name + " counter\n";
          last_typed = entry.name;
        }
        out += entry.name + labels + " " + Num(entry.counter->value()) + "\n";
        break;
      case MetricsRegistry::Kind::kGauge:
        if (entry.name != last_typed) {
          out += "# TYPE " + entry.name + " gauge\n";
          last_typed = entry.name;
        }
        out += entry.name + labels + " " + Num(entry.gauge->value()) + "\n";
        break;
      case MetricsRegistry::Kind::kHistogram: {
        if (entry.name != last_typed) {
          out += "# TYPE " + entry.name + " histogram\n";
          last_typed = entry.name;
        }
        const Histogram& h = *entry.histogram;
        const std::vector<uint64_t> counts = h.BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out += entry.name + "_bucket" +
                 LabelBlockLe(entry.labels, Num(h.bounds()[i])) + " " +
                 Num(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += entry.name + "_bucket" + LabelBlockLe(entry.labels, "+Inf") +
               " " + Num(cumulative) + "\n";
        out += entry.name + "_sum" + labels + " " + Num(h.sum()) + "\n";
        out += entry.name + "_count" + labels + " " + Num(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshotJson(const MetricsRegistry& registry,
                                const RunProvenance& provenance) {
  std::string out = "{\"git_sha\":\"" + JsonEscape(provenance.git_sha) +
                    "\",\"dirty\":" + (provenance.dirty ? "true" : "false") +
                    ",\"seed\":" + Num(provenance.seed) + ",\"config\":\"" +
                    JsonEscape(provenance.config) + "\",\"metrics\":{";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(key) + "\":" + value;
  };
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    const std::string key = entry.name + LabelBlock(entry.labels);
    switch (entry.kind) {
      case MetricsRegistry::Kind::kCounter:
        emit(key, Num(entry.counter->value()));
        break;
      case MetricsRegistry::Kind::kGauge:
        emit(key, Num(entry.gauge->value()));
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        emit(key + "_count", Num(h.count()));
        emit(key + "_sum", Num(h.sum()));
        emit(key + "_p50", Num(h.Quantile(0.50)));
        emit(key + "_p95", Num(h.Quantile(0.95)));
        emit(key + "_p99", Num(h.Quantile(0.99)));
        break;
      }
    }
  }
  out += "}}";
  return out;
}

Status AppendMetricsSnapshot(const MetricsRegistry& registry,
                             const RunProvenance& provenance,
                             const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Internal("cannot open metrics snapshot file: " + path);
  }
  const std::string line = MetricsSnapshotJson(registry, provenance);
  const bool ok = std::fputs(line.c_str(), file) >= 0 &&
                  std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok) return Status::Internal("short write to " + path);
  return Status::Ok();
}

std::string TraceJsonl(const TraceLog& trace) {
  std::string out;
  for (const TraceEvent& event : trace.Snapshot()) {
    out += "{\"unit\":\"" + JsonEscape(event.unit) + "\",\"stage\":\"" +
           JsonEscape(event.stage) + "\",\"tick\":" + Num(uint64_t{event.tick}) +
           ",\"seconds\":" + Num(event.seconds) +
           ",\"items\":" + Num(uint64_t{event.items}) + "}\n";
  }
  return out;
}

}  // namespace dbc
