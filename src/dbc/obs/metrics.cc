#include "dbc/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dbc {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  uint64_t running = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t next = running + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      if (i >= bounds_.size()) {
        // +Inf bucket: clamp to the largest finite bound.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double into =
          (rank - static_cast<double>(running)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * into;
    }
    running = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

const std::vector<double>& DefaultLatencyBounds() {
  // 1us .. ~8.4s, doubling: 24 buckets cover sub-microsecond kernels up to a
  // pathological full-fleet drain without tuning per call site.
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    double b = 1e-6;
    for (int i = 0; i < 24; ++i) {
      bounds.push_back(b);
      b *= 2.0;
    }
    return bounds;
  }();
  return kBounds;
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in a metric/label name
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[Key(name, labels)];
  if (slot.counter == nullptr) {
    slot.name = name;
    slot.labels = labels;
    slot.kind = Kind::kCounter;
    slot.counter = std::make_unique<Counter>();
  }
  return slot.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[Key(name, labels)];
  if (slot.gauge == nullptr) {
    slot.name = name;
    slot.labels = labels;
    slot.kind = Kind::kGauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return slot.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[Key(name, labels)];
  if (slot.histogram == nullptr) {
    slot.name = name;
    slot.labels = labels;
    slot.kind = Kind::kHistogram;
    slot.histogram = std::make_unique<Histogram>(bounds);
  }
  return slot.histogram.get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) {
    Entry entry;
    entry.name = slot.name;
    entry.labels = slot.labels;
    entry.kind = slot.kind;
    entry.counter = slot.counter.get();
    entry.gauge = slot.gauge.get();
    entry.histogram = slot.histogram.get();
    out.push_back(std::move(entry));
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

const MetricsRegistry::Slot* MetricsRegistry::Find(const std::string& name,
                                                   const MetricLabels& labels,
                                                   Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(Key(name, labels));
  if (it == slots_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const MetricLabels& labels) const {
  const Slot* slot = Find(name, labels, Kind::kCounter);
  return slot == nullptr ? nullptr : slot->counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const MetricLabels& labels) const {
  const Slot* slot = Find(name, labels, Kind::kGauge);
  return slot == nullptr ? nullptr : slot->gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  const Slot* slot = Find(name, labels, Kind::kHistogram);
  return slot == nullptr ? nullptr : slot->histogram.get();
}

}  // namespace dbc
