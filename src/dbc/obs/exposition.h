// Scrape surfaces for the MetricsRegistry: a Prometheus-style text
// exposition (for a pull-based scraper or a human with curl) and a
// provenance-stamped JSONL snapshot (one JSON object per scrape, appended —
// the same git-SHA/seed/config stamping the bench reports use, so a metric
// can be tracked across commits next to BENCH_*.json trajectories).
#pragma once

#include <string>

#include "dbc/common/provenance.h"
#include "dbc/common/status.h"
#include "dbc/obs/metrics.h"
#include "dbc/obs/trace.h"

namespace dbc {

/// Prometheus text exposition format, version 0.0.4: `# TYPE` headers, one
/// `name{labels} value` line per sample; histograms expand into cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`. Output order is
/// deterministic (registry key order) so scrapes diff cleanly.
std::string PrometheusText(const MetricsRegistry& registry);

/// One snapshot of the registry as a single-line JSON object:
/// {"git_sha":...,"seed":...,"config":...,"metrics":{name{labels}:value,...}}
/// Histograms contribute `<name>_count`, `<name>_sum`, and p50/p95/p99
/// quantile estimates.
std::string MetricsSnapshotJson(const MetricsRegistry& registry,
                                const RunProvenance& provenance);

/// Appends MetricsSnapshotJson + '\n' to `path` (creating it if needed).
Status AppendMetricsSnapshot(const MetricsRegistry& registry,
                             const RunProvenance& provenance,
                             const std::string& path);

/// Trace events as JSONL (one event object per line, oldest first).
std::string TraceJsonl(const TraceLog& trace);

}  // namespace dbc
