// Structured per-tick trace of the detection chain: each pipeline stage
// (ingest, stream, verdict, diagnosis, feedback) and each engine drain
// records one event with its steady-clock duration. The log is a bounded
// ring — a long-running monitor keeps the newest window of activity — and is
// mutex-guarded: stages record once per drained batch, not per sample, so
// the lock is far off the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace dbc {

/// One recorded stage execution.
struct TraceEvent {
  /// Unit the stage ran for ("" for engine-level events).
  std::string unit;
  /// Stage name ("ingest", "stream", "verdict", "diagnosis", "feedback",
  /// "drain", "merge", ...).
  std::string stage;
  /// Detector tick (stream ticks seen) when the event was recorded.
  size_t tick = 0;
  /// Stage wall time in seconds (steady clock; always >= 0).
  double seconds = 0.0;
  /// Items the stage touched (samples offered, verdicts resolved, alerts
  /// merged — stage-dependent).
  size_t items = 0;
};

/// Bounded ring of TraceEvents. Thread-safe; Record() from pool workers and
/// Snapshot() from the scrape thread may interleave freely.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096);

  void Record(TraceEvent event);

  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events ever recorded.
  size_t recorded() const;
  /// Events overwritten by the ring bound.
  size_t dropped() const;

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  size_t recorded_ = 0;
  size_t dropped_ = 0;
};

}  // namespace dbc
